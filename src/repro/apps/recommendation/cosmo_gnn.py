"""COSMO-GNN: GCE-GNN extended with COSMO knowledge (§4.2.3).

For each session step ``t`` the user searched query ``k_t`` and clicked
item ``v_t``; COSMO-LM explains the pair and the same embedding LM
vectorizes the explanation into ``g_t``.  A two-layer perceptron aligns
the knowledge space with the GNN feature space and the per-step
representation becomes ``[h_t ; ĝ_t]``; soft attention pools the steps
into the session representation.
"""

from __future__ import annotations

import numpy as np

from repro.apps.recommendation.gnn import GCEGNN
from repro.nn import MLP, Linear, Tensor
from repro.utils.rng import spawn_rng

__all__ = ["CosmoGNN"]


class CosmoGNN(GCEGNN):
    """GCE-GNN + aligned knowledge embeddings per session step."""

    needs_knowledge = True

    def __init__(
        self,
        n_items: int,
        global_neighbors: np.ndarray,
        global_weights: np.ndarray,
        knowledge_dim: int = 64,
        dim: int = 48,
        gnn_steps: int = 1,
        max_len: int = 10,
        seed: int = 0,
    ):
        super().__init__(
            n_items,
            global_neighbors,
            global_weights,
            dim=dim,
            gnn_steps=gnn_steps,
            max_len=max_len,
            seed=seed,
        )
        rng = spawn_rng(seed, "cosmo-gnn")
        # Two-layer perceptron aligning knowledge space with GNN space.
        self.knowledge_mlp = MLP([knowledge_dim, dim, dim], rng)

    def forward(self, items, mask, knowledge=None) -> Tensor:
        """GCE-GNN states enriched with aligned knowledge embeddings."""
        if knowledge is None:
            raise ValueError("CosmoGNN requires per-step knowledge vectors")
        sequence, _ = self._sequence_states(items, mask)
        aligned = self.knowledge_mlp(Tensor(knowledge))  # (B, T, dim)
        # Residual fusion: knowledge refines the GNN step representation
        # and degrades gracefully to GCE-GNN when uninformative.
        enriched = sequence + aligned
        session = self._positional_attention(enriched, mask)
        return session @ self.items.weight.T
