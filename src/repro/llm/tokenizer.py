"""Word-level tokenizer with special tokens for the student LM."""

from __future__ import annotations

import json
import pathlib
from collections import Counter
from collections.abc import Iterable

from repro.utils.textproc import tokenize_words

__all__ = ["Tokenizer"]


class Tokenizer:
    """Word-level vocabulary with PAD/BOS/EOS/SEP/UNK specials.

    Built once from a corpus via :meth:`fit`; encoding maps out-of-vocab
    words to UNK so the student LM degrades gracefully on novel text.
    """

    PAD = "<pad>"
    BOS = "<bos>"
    EOS = "<eos>"
    SEP = "<sep>"
    UNK = "<unk>"
    SPECIALS = (PAD, BOS, EOS, SEP, UNK)

    def __init__(self):
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in self.SPECIALS:
            self._add(token)

    def _add(self, token: str) -> int:
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    # ------------------------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self._token_to_id[self.PAD]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[self.BOS]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[self.EOS]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[self.SEP]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[self.UNK]

    def __len__(self) -> int:
        return len(self._id_to_token)

    # ------------------------------------------------------------------
    def fit(self, corpus: Iterable[str], min_count: int = 1, max_vocab: int | None = None) -> "Tokenizer":
        """Build the vocabulary from an iterable of texts."""
        counts: Counter[str] = Counter()
        for text in corpus:
            counts.update(tokenize_words(text))
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        if max_vocab is not None:
            ranked = ranked[: max_vocab - len(self.SPECIALS)]
        for token, count in ranked:
            if count >= min_count:
                self._add(token)
        return self

    def encode(self, text: str, add_eos: bool = False) -> list[int]:
        """Token ids for ``text`` (unknown words → UNK)."""
        ids = [self._token_to_id.get(tok, self.unk_id) for tok in tokenize_words(text)]
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: Iterable[int], skip_special: bool = True) -> str:
        """Text for a sequence of token ids."""
        tokens = []
        for token_id in ids:
            token = self._id_to_token[int(token_id)]
            if skip_special and token in self.SPECIALS:
                continue
            tokens.append(token)
        return " ".join(tokens)

    def token(self, token_id: int) -> str:
        return self._id_to_token[int(token_id)]

    def id_of(self, token: str) -> int:
        """Id of a known token (raises KeyError for unknown tokens)."""
        return self._token_to_id[token]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    # ------------------------------------------------------------------
    def save(self, path: str | pathlib.Path) -> None:
        """Persist the vocabulary as JSON."""
        payload = {"format": "cosmo-tokenizer", "tokens": self._id_to_token}
        pathlib.Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Tokenizer":
        """Restore a tokenizer written by :meth:`save`."""
        payload = json.loads(pathlib.Path(path).read_text())
        if payload.get("format") != "cosmo-tokenizer":
            raise ValueError(f"{path}: not a tokenizer file")
        tokens = payload["tokens"]
        if tokens[: len(cls.SPECIALS)] != list(cls.SPECIALS):
            raise ValueError(f"{path}: special tokens corrupted")
        tokenizer = cls()
        for token in tokens[len(cls.SPECIALS):]:
            tokenizer._add(token)
        return tokenizer
