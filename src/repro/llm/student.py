"""The trainable student language model (COSMO-LM base, §3.4 stand-in).

A word-level GRU LM trained with teacher forcing on instruction data
(prompt ``<sep>`` target).  Instruction finetuning is *real* here: before
finetuning the model emits noise, after finetuning on typical-only
outputs its typical-generation rate rises well above the raw teacher's —
the paper's central claim about COSMO-LM — while inference cost drops by
orders of magnitude (tracked by the shared latency model).
"""

from __future__ import annotations

import numpy as np

from repro.llm.interface import Generation, GenerationBatch, LatencyModel
from repro.llm.tokenizer import Tokenizer
from repro.nn import GRU, Adam, Embedding, Linear, Module, Tensor, clip_grad_norm, cross_entropy, no_grad
from repro.nn.functional import log_softmax
from repro.utils.rng import spawn_rng
from repro.utils.textproc import tokenize_words

__all__ = ["StudentLM"]


class StudentLM(Module):
    """GRU language model with an instruction-tuning training loop."""

    def __init__(
        self,
        tokenizer: Tokenizer,
        embed_dim: int = 32,
        hidden_dim: int = 64,
        name: str = "cosmo-lm-sim",
        seed: int = 0,
        latency: LatencyModel | None = None,
    ):
        super().__init__()
        self.tokenizer = tokenizer
        self.name = name
        self.latency = latency or LatencyModel()
        rng = spawn_rng(seed, f"student:{name}")
        self.embedding = Embedding(len(tokenizer), embed_dim, rng, padding_idx=tokenizer.pad_id)
        self.gru = GRU(embed_dim, hidden_dim, rng)
        self.output = Linear(hidden_dim, len(tokenizer), rng)
        self._train_rng = spawn_rng(seed, f"student-train:{name}")

    @property
    def parameter_count(self) -> int:
        return self.num_parameters()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _encode_pair(self, prompt: str, target: str, max_len: int) -> tuple[list[int], int]:
        """Token ids ``BOS prompt SEP target EOS``; returns (ids, sep_pos)."""
        tok = self.tokenizer
        prompt_ids = tok.encode(prompt)
        target_ids = tok.encode(target)
        ids = [tok.bos_id, *prompt_ids, tok.sep_id, *target_ids, tok.eos_id]
        sep_pos = 1 + len(prompt_ids)
        if len(ids) > max_len:
            # Trim the prompt head first; targets are short and must survive.
            overflow = len(ids) - max_len
            keep_from = min(overflow, sep_pos - 1)
            ids = [tok.bos_id] + ids[1 + keep_from :]
            sep_pos -= keep_from
        return ids, sep_pos

    def fit(
        self,
        pairs: list[tuple[str, str]],
        epochs: int = 3,
        batch_size: int = 32,
        lr: float = 3e-3,
        max_len: int = 40,
        verbose: bool = False,
    ) -> list[float]:
        """Teacher-forced instruction finetuning; returns per-epoch loss."""
        tok = self.tokenizer
        encoded = [self._encode_pair(p, t, max_len) for p, t in pairs]
        optimizer = Adam(self.parameters(), lr=lr)
        losses: list[float] = []
        self.train()
        for _ in range(epochs):
            order = self._train_rng.permutation(len(encoded))
            epoch_loss, n_batches = 0.0, 0
            for start in range(0, len(order), batch_size):
                batch = [encoded[i] for i in order[start : start + batch_size]]
                loss = self._batch_loss(batch)
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self.parameters(), 5.0)
                optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            losses.append(epoch_loss / max(n_batches, 1))
            if verbose:  # pragma: no cover - logging aid
                print(f"epoch loss {losses[-1]:.4f}")
        self.eval()
        return losses

    def _batch_loss(self, batch: list[tuple[list[int], int]]) -> Tensor:
        tok = self.tokenizer
        width = max(len(ids) for ids, _ in batch)
        inputs = np.full((len(batch), width - 1), tok.pad_id, dtype=np.int64)
        targets = np.full((len(batch), width - 1), tok.pad_id, dtype=np.int64)
        weights = np.zeros((len(batch), width - 1))
        for row, (ids, sep_pos) in enumerate(batch):
            seq = np.asarray(ids, dtype=np.int64)
            inputs[row, : len(ids) - 1] = seq[:-1]
            targets[row, : len(ids) - 1] = seq[1:]
            # Loss only on the response span (positions at/after <sep>).
            weights[row, sep_pos : len(ids) - 1] = 1.0
        embedded = self.embedding(inputs)
        hidden, _ = self.gru(embedded, mask=inputs != tok.pad_id)
        logits = self.output(hidden)
        return cross_entropy(logits, targets, weights=weights)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _prime(self, prompts: list[str]) -> Tensor:
        """Run prompts (ending in <sep>) through the GRU; returns states."""
        tok = self.tokenizer
        encoded = [[tok.bos_id, *tok.encode(p), tok.sep_id] for p in prompts]
        width = max(len(ids) for ids in encoded)
        inputs = np.full((len(encoded), width), tok.pad_id, dtype=np.int64)
        for row, ids in enumerate(encoded):
            inputs[row, width - len(ids):] = ids  # left-pad so states align
        embedded = self.embedding(inputs)
        mask = inputs != tok.pad_id
        _, state = self.gru(embedded, mask=mask)
        return state

    def decode_batch(self, prompts: list[str], max_new_tokens: int = 14) -> list[Generation]:
        """Greedy decode for a batch of prompts (decoding internal).

        The primed state has already consumed ``<sep>``, so the first
        prediction reads directly off that state; each subsequent step
        feeds back the token just emitted.
        """
        if not prompts:
            return []
        tok = self.tokenizer
        with no_grad():
            state = self._prime(prompts)
            finished = np.zeros(len(prompts), dtype=bool)
            produced: list[list[int]] = [[] for _ in prompts]
            for _ in range(max_new_tokens):
                logits = self.output(state).numpy()
                next_ids = logits.argmax(axis=-1)
                for row, token_id in enumerate(next_ids):
                    if finished[row]:
                        continue
                    if int(token_id) == tok.eos_id:
                        finished[row] = True
                    else:
                        produced[row].append(int(token_id))
                if finished.all():
                    break
                embedded = self.embedding(next_ids[:, None])[:, 0, :]
                state = self.gru.cell(embedded, state)
        outputs = []
        for row, ids in enumerate(produced):
            text = tok.decode(ids)
            tokens = len(ids)
            outputs.append(
                Generation(
                    text=f"{text}." if text else text,
                    tokens=tokens,
                    latency_s=self.latency.charge(self.parameter_count, max(tokens, 1)),
                )
            )
        return outputs

    def generate_batch(self, prompts: list[str]) -> GenerationBatch:
        """:class:`~repro.llm.interface.KnowledgeGenerator` entrypoint."""
        return GenerationBatch(generations=list(self.decode_batch(prompts)))

    def generate_knowledge(self, prompts: list[str],
                           max_new_tokens: int = 14) -> list[Generation]:
        """Deprecated shim over :meth:`generate_batch` (kept for
        offline/pipeline callers; serving code must use the batch
        entrypoint — the tombstone test pins this)."""
        return self.decode_batch(prompts, max_new_tokens=max_new_tokens)

    def generate(self, prompt: str, num_candidates: int = 1) -> list[Generation]:
        """Protocol-compatible single-prompt generation (greedy).

        Decoding internal; serving callers use :meth:`generate_batch`.
        """
        return [self.decode_batch([prompt])[0] for _ in range(num_candidates)]

    def sequence_logprob(self, prompt: str, target: str) -> float:
        """Log probability of ``target`` given ``prompt`` (label scoring)."""
        tok = self.tokenizer
        ids, sep_pos = self._encode_pair(prompt, target, max_len=10_000)
        with no_grad():
            seq = np.asarray(ids, dtype=np.int64)
            embedded = self.embedding(seq[None, :-1])
            hidden, _ = self.gru(embedded)
            logp = log_softmax(self.output(hidden), axis=-1).numpy()[0]
        total = 0.0
        for position in range(sep_pos, len(ids) - 1):
            total += float(logp[position, ids[position + 1]])
        return total

    def classify(self, prompt: str, choices: tuple[str, ...] = ("yes", "no")) -> str:
        """Pick the answer choice with highest conditional likelihood."""
        scores = {choice: self.sequence_logprob(prompt, choice) for choice in choices}
        return max(scores, key=scores.get)
