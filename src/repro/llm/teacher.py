"""The simulated teacher LLM (stand-in for OPT-30b/175b, §3.2.2).

Given a QA-style behavior prompt, the teacher emits knowledge-candidate
continuations with a calibrated quality mix: *typical* explanations (the
behavior's true latent intent verbalized through a relation template),
*plausible-but-not-typical* ones, the paper's documented failure modes —
generic intentions ("because they like them"), paraphrases of the product
title, one-sided explanations for co-buy pairs, implausible knowledge —
and truncated generations.  Each output carries a hidden
:class:`~repro.llm.interface.GenerationTruth` read only by the annotation
oracle, never by the pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.behavior.world import World
from repro.catalog.vocab import GENERIC_TAILS
from repro.core.prompts import BehaviorPrompt
from repro.core.relations import RELATION_SPECS, Relation, verbalize
from repro.llm.interface import Generation, GenerationBatch, GenerationTruth, LatencyModel
from repro.utils.rng import spawn_rng
from repro.utils.textproc import tokenize_words

__all__ = ["TeacherLLM", "QUALITY_MIX"]

# Per-behavior quality mixtures, calibrated so annotation recovers the
# Table 4 shape (search-buy ≈35% typical; co-buy notably lower because the
# teacher tends to explain only one of the two co-bought products).
QUALITY_MIX: dict[str, dict[str, float]] = {
    "search-buy": {
        "typical": 0.35, "plausible": 0.20, "generic": 0.15,
        "paraphrase": 0.12, "implausible": 0.10, "incomplete": 0.08,
    },
    "co-buy": {
        "typical": 0.10, "plausible": 0.15, "one_sided": 0.33,
        "generic": 0.15, "paraphrase": 0.10, "implausible": 0.10,
        "incomplete": 0.07,
    },
}


class TeacherLLM:
    """Quality-mixture generator conditioned on world ground truth."""

    def __init__(
        self,
        world: World,
        name: str = "opt-30b-sim",
        parameter_count: int = 30_000_000_000,
        latency: LatencyModel | None = None,
        seed: int = 0,
    ):
        self.world = world
        self.name = name
        self.parameter_count = parameter_count
        self.latency = latency or LatencyModel()
        self._rng = spawn_rng(seed, f"teacher:{name}")

    # ------------------------------------------------------------------
    def generate_for(self, prompt: BehaviorPrompt, num_candidates: int = 3) -> list[Generation]:
        """Emit ``num_candidates`` knowledge candidates for a behavior."""
        mix = QUALITY_MIX[prompt.behavior]
        qualities = list(mix)
        probabilities = np.array([mix[q] for q in qualities])
        outputs: list[Generation] = []
        for _ in range(num_candidates):
            drawn = qualities[int(self._rng.choice(len(qualities), p=probabilities))]
            text, intent_id, actual = self._compose(prompt, drawn)
            tokens = len(tokenize_words(text))
            latency = self.latency.charge(self.parameter_count, tokens)
            outputs.append(
                Generation(
                    text=text,
                    tokens=tokens,
                    latency_s=latency,
                    # The oracle records what was actually composed: a
                    # drawn "typical" degrades when the behavior has no
                    # shared intent to be typical about.
                    truth=GenerationTruth(quality=actual, intent_id=intent_id),
                )
            )
        return outputs

    def generate_batch(self, prompts: list[str]) -> GenerationBatch:
        """:class:`~repro.llm.interface.KnowledgeGenerator` entrypoint.

        Lets the serving bench mount the raw teacher behind
        :class:`~repro.serving.deployment.CosmoService` without an
        adapter — the expensive comparison arm of Figure 5.
        """
        return GenerationBatch(
            generations=[self.generate(prompt)[0] for prompt in prompts]
        )

    def generate_knowledge(self, prompts: list[str]) -> list[Generation]:
        """Deprecated shim over :meth:`generate_batch`."""
        return self.generate_batch(prompts).require()

    def generate(self, prompt: str, num_candidates: int = 1) -> list[Generation]:
        """Protocol-compatible raw continuation (demo / probing use)."""
        tail = GENERIC_TAILS[int(self._rng.integers(len(GENERIC_TAILS)))]
        text = f"it is {tail}."
        tokens = len(tokenize_words(text))
        return [
            Generation(text=text, tokens=tokens,
                       latency_s=self.latency.charge(self.parameter_count, tokens),
                       truth=GenerationTruth(quality="generic"))
            for _ in range(num_candidates)
        ]

    # ------------------------------------------------------------------
    # Quality-class compositors
    # ------------------------------------------------------------------
    def _compose(self, prompt: BehaviorPrompt, quality: str) -> tuple[str, str | None, str]:
        """Compose text for the drawn class; returns (text, intent, actual).

        ``actual`` may differ from the drawn class when the behavior
        cannot support it (e.g. a noise pair has nothing typical to say).
        """
        if quality == "typical":
            return self._typical(prompt)
        if quality == "plausible":
            return self._plausible(prompt)
        if quality == "one_sided":
            return self._one_sided(prompt)
        if quality == "generic":
            tail = GENERIC_TAILS[int(self._rng.integers(len(GENERIC_TAILS)))]
            return f"it is {tail}.", None, "generic"
        if quality == "paraphrase":
            return self._paraphrase(prompt)
        if quality == "implausible":
            return self._implausible(prompt)
        if quality == "incomplete":
            return self._incomplete(prompt)
        raise ValueError(f"unknown quality class {quality!r}")

    def _render(self, relation: Relation, tail: str) -> str:
        return f"{verbalize(relation, tail)}."

    def _relation_for(self, intent, prompt: BehaviorPrompt) -> Relation:
        """Honor the prompt's seed-relation hint when types allow it."""
        if prompt.seed_relation is None:
            return intent.relation
        spec = RELATION_SPECS[intent.relation]
        for relation, candidate in RELATION_SPECS.items():
            if candidate.seed == prompt.seed_relation and candidate.tail_type == spec.tail_type:
                return relation
        return intent.relation

    def _typical(self, prompt: BehaviorPrompt) -> tuple[str, str | None, str]:
        intent_id = prompt.intent_id
        if intent_id is None and prompt.behavior == "co-buy":
            intent_id = self._shared_intent(prompt)
        if intent_id is None:
            # A noise behavior has no true explanation.  The teacher
            # still answers — with knowledge about the product alone,
            # which is one-sided w.r.t. the behavior.
            product = self.world.catalog.get(prompt.product_ids[-1])
            if not product.intent_ids:
                tail = GENERIC_TAILS[int(self._rng.integers(len(GENERIC_TAILS)))]
                return f"it is {tail}.", None, "generic"
            intent = self.world.intents.get(
                product.intent_ids[int(self._rng.integers(len(product.intent_ids)))]
            )
            return self._render(intent.relation, intent.tail), intent.intent_id, "one_sided"
        intent = self.world.intents.get(intent_id)
        relation = self._relation_for(intent, prompt)
        return self._render(relation, intent.tail), intent_id, "typical"

    def _plausible(self, prompt: BehaviorPrompt) -> tuple[str, str | None, str]:
        """True of the product, but not the reason for *this* behavior."""
        product = self.world.catalog.get(prompt.product_ids[-1])
        others = [i for i in product.intent_ids if i != prompt.intent_id]
        if not others:
            # Single-intent products leave nothing merely plausible to
            # say; co-buy degrades to a one-sided explanation instead of
            # inflating the typical ratio.
            if prompt.behavior == "co-buy":
                return self._one_sided(prompt)
            return self._typical(prompt)
        intent = self.world.intents.get(others[int(self._rng.integers(len(others)))])
        return self._render(intent.relation, intent.tail), intent.intent_id, "plausible"

    def _one_sided(self, prompt: BehaviorPrompt) -> tuple[str, str | None, str]:
        """Explains one co-bought product, ignoring the pair (§3.4).

        Syntactically these read like ordinary knowledge — the defect is
        semantic (the intent holds for product A but is not shared with
        product B), so only annotators/critics can catch it, exactly as
        the paper observes.
        """
        product = self.world.catalog.get(prompt.product_ids[0])
        partner = self.world.catalog.get(prompt.product_ids[-1])
        unshared = [i for i in product.intent_ids if i not in partner.intent_ids]
        if not unshared:
            return self._typical(prompt)
        intent = self.world.intents.get(
            unshared[int(self._rng.integers(len(unshared)))]
        )
        return self._render(intent.relation, intent.tail), intent.intent_id, "one_sided"

    def _paraphrase(self, prompt: BehaviorPrompt) -> tuple[str, str | None, str]:
        """Echo of the behavior context (the "Apple watch is a watch" mode)."""
        product = self.world.catalog.get(prompt.product_ids[-1])
        if self._rng.random() < 0.5:
            return f"it is a type of {product.product_type}.", None, "paraphrase"
        return f"it is a type of {product.title}.", None, "paraphrase"

    def _implausible(self, prompt: BehaviorPrompt) -> tuple[str, str | None, str]:
        """Knowledge from an unrelated domain — fluent but wrong."""
        foreign = [
            intent for intent in self.world.intents.all()
            if intent.domain != prompt.domain
        ]
        intent = foreign[int(self._rng.integers(len(foreign)))]
        return self._render(intent.relation, intent.tail), intent.intent_id, "implausible"

    def _incomplete(self, prompt: BehaviorPrompt) -> tuple[str, str | None, str]:
        """A typical generation truncated mid-phrase (no terminal period)."""
        text, intent_id, _ = self._typical(prompt)
        words = text.rstrip(".").split()
        cut = max(2, int(len(words) * float(self._rng.uniform(0.3, 0.7))))
        return " ".join(words[:cut]), intent_id, "incomplete"

    def _shared_intent(self, prompt: BehaviorPrompt) -> str | None:
        """Ground-truth intent shared by all head products, if any."""
        pools = [set(self.world.catalog.get(pid).intent_ids) for pid in prompt.product_ids]
        shared = set.intersection(*pools) if pools else set()
        if not shared:
            return None
        ordered = sorted(shared)
        return ordered[int(self._rng.integers(len(ordered)))]
