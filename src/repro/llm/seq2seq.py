"""Pointer-generator attention seq2seq — the COSMO-LM architecture.

Knowledge generation is largely a *content transfer* task: the typical
tail ("winter camping") appears verbatim or near-verbatim in the behavior
context ("things for winter camping").  The student is therefore a GRU
encoder-decoder with additive attention **and a copy mechanism**: at each
decoder step the output distribution is a learned mixture of the
vocabulary softmax and the attention distribution scattered onto the
prompt's token ids, so copying intent phrases out of the query is
directly learnable even from few demonstrations.  The plain
:class:`~repro.llm.student.StudentLM` is kept as the architecture
ablation baseline.
"""

from __future__ import annotations

import numpy as np

from repro.llm.interface import Generation, GenerationBatch, LatencyModel
from repro.llm.tokenizer import Tokenizer
from repro.nn import (
    GRU,
    Adam,
    Dropout,
    Embedding,
    Linear,
    Module,
    Tensor,
    clip_grad_norm,
    no_grad,
    vocab_scatter,
)
from repro.nn.functional import softmax
from repro.nn.rnn import GRUCell
from repro.utils.rng import spawn_rng

__all__ = ["Seq2SeqLM"]

_NEG_INF = -1e9
_EPS = 1e-9


class Seq2SeqLM(Module):
    """GRU encoder-decoder with additive attention and pointer-copying."""

    def __init__(
        self,
        tokenizer: Tokenizer,
        embed_dim: int = 48,
        hidden_dim: int = 96,
        name: str = "cosmo-lm-seq2seq",
        seed: int = 0,
        latency: LatencyModel | None = None,
    ):
        super().__init__()
        self.tokenizer = tokenizer
        self.name = name
        self.latency = latency or LatencyModel()
        self.hidden_dim = hidden_dim
        rng = spawn_rng(seed, f"seq2seq:{name}")
        vocab = len(tokenizer)
        self.embedding = Embedding(vocab, embed_dim, rng, padding_idx=tokenizer.pad_id)
        self.encoder = GRU(embed_dim, hidden_dim, rng)
        self.decoder_cell = GRUCell(embed_dim + hidden_dim, hidden_dim, rng)
        # Additive attention: score = v · tanh(W_h h_enc + W_s s_dec).
        self.attn_enc = Linear(hidden_dim, hidden_dim, rng, bias=False)
        self.attn_dec = Linear(hidden_dim, hidden_dim, rng)
        # Location feature: the previous step's attention weights feed the
        # energy so the pointer learns to *advance* along the prompt while
        # copying multi-word phrases.
        self.attn_loc = Linear(1, hidden_dim, rng)
        self.attn_v = Linear(hidden_dim, 1, rng, bias=False)
        self.output = Linear(2 * hidden_dim, vocab, rng)
        # Pointer gate: how much probability mass goes to copying.
        # Bias starts positive so early training explores the copy path.
        self.copy_gate = Linear(2 * hidden_dim, 1, rng)
        self.copy_gate.bias.data[:] = 1.0
        # Dropout on the pre-output features discourages pure vocab-path
        # memorization of demonstrations, pushing copyable examples onto
        # the pointer path.
        self.feature_dropout = Dropout(0.2, spawn_rng(seed, f"seq2seq-drop:{name}"))
        # Weight of the auxiliary copy-gate supervision term.
        self.gate_loss_weight = 0.5
        self._train_rng = spawn_rng(seed, f"seq2seq-train:{name}")

    @property
    def parameter_count(self) -> int:
        return self.num_parameters()

    # ------------------------------------------------------------------
    def _encode_prompts(self, prompts: list[str], max_prompt_len: int | None = None):
        tok = self.tokenizer
        encoded = [tok.encode(p) for p in prompts]
        if max_prompt_len is not None:
            encoded = [ids[-max_prompt_len:] for ids in encoded]
        width = max(max(len(ids) for ids in encoded), 1)
        inputs = np.full((len(encoded), width), tok.pad_id, dtype=np.int64)
        for row, ids in enumerate(encoded):
            inputs[row, : len(ids)] = ids
        mask = inputs != tok.pad_id
        states, final = self.encoder(self.embedding(inputs), mask=mask)
        return states, final, mask, inputs

    def _attend(self, enc_states: Tensor, enc_proj: Tensor, dec_state: Tensor,
                mask: np.ndarray, prev_weights: Tensor | None) -> tuple[Tensor, Tensor]:
        """Location-aware additive attention; returns (context, weights)."""
        batch, steps, dim = enc_states.shape
        query = self.attn_dec(dec_state).reshape(batch, 1, dim)
        energy_in = enc_proj + query
        if prev_weights is not None:
            energy_in = energy_in + self.attn_loc(prev_weights)
        energy = self.attn_v(energy_in.tanh())  # (B, T, 1)
        bias = np.where(mask, 0.0, _NEG_INF)[..., None]
        weights = softmax(energy + Tensor(bias), axis=1)
        context = (enc_states * weights).sum(axis=1)
        return context, weights

    def _step(self, prev_ids: np.ndarray, state: Tensor, enc_states: Tensor,
              enc_proj: Tensor, mask: np.ndarray, prompt_ids: np.ndarray,
              prev_weights: Tensor | None):
        """One decoder step; returns (probs, new state, weights, gate)."""
        context, weights = self._attend(enc_states, enc_proj, state, mask, prev_weights)
        step_embed = self.embedding(prev_ids)
        state = self.decoder_cell(Tensor.concat([step_embed, context], axis=-1), state)
        features = self.feature_dropout(Tensor.concat([state, context], axis=-1))
        vocab_probs = softmax(self.output(features), axis=-1)
        copy_weights = weights.reshape(weights.shape[0], weights.shape[1])
        copy_probs = vocab_scatter(copy_weights, prompt_ids, len(self.tokenizer))
        gate = self.copy_gate(features).sigmoid()  # (B, 1)
        probs = vocab_probs * (1.0 - gate) + copy_probs * gate
        return probs, state, weights, gate

    # ------------------------------------------------------------------
    def fit(
        self,
        pairs: list[tuple[str, str]],
        epochs: int = 8,
        batch_size: int = 32,
        lr: float = 4e-3,
        max_len: int = 40,
        max_target_len: int = 14,
        verbose: bool = False,
    ) -> list[float]:
        """Teacher-forced finetuning; returns per-epoch mean loss."""
        tok = self.tokenizer
        data = [
            (prompt, tok.encode(target)[:max_target_len] + [tok.eos_id])
            for prompt, target in pairs
        ]
        optimizer = Adam(self.parameters(), lr=lr)
        losses: list[float] = []
        self.train()
        for _ in range(epochs):
            # Length-bucketed batching: shuffle, then sort within large
            # chunks by target length so one-token classification targets
            # do not pay a 15-step decoder unroll.
            order = self._train_rng.permutation(len(data))
            chunk = batch_size * 16
            bucketed: list[int] = []
            for start in range(0, len(order), chunk):
                segment = sorted(order[start : start + chunk],
                                 key=lambda i: len(data[i][1]))
                bucketed.extend(segment)
            order = bucketed
            epoch_loss, batches = 0.0, 0
            for start in range(0, len(order), batch_size):
                batch = [data[i] for i in order[start : start + batch_size]]
                loss = self._batch_loss(batch, max_len)
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self.parameters(), 5.0)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
            if verbose:  # pragma: no cover - logging aid
                print(f"epoch loss {losses[-1]:.4f}")
        self.eval()
        return losses

    def _batch_loss(self, batch: list[tuple[str, list[int]]], max_len: int) -> Tensor:
        tok = self.tokenizer
        prompts = [prompt for prompt, _ in batch]
        targets = [ids for _, ids in batch]
        enc_states, state, mask, prompt_ids = self._encode_prompts(prompts, max_prompt_len=max_len)
        enc_proj = self.attn_enc(enc_states)
        width = max(len(ids) for ids in targets)
        target_arr = np.full((len(batch), width), tok.pad_id, dtype=np.int64)
        for row, ids in enumerate(targets):
            target_arr[row, : len(ids)] = ids
        # Decoder inputs: <sep> then the target shifted right.
        dec_inputs = np.full((len(batch), width), tok.sep_id, dtype=np.int64)
        dec_inputs[:, 1:] = target_arr[:, :-1]
        # Gate supervision: when the target token occurs in the prompt,
        # the pointer should fire; otherwise the vocabulary path should.
        # This keeps the copy mechanism alive even when most training
        # examples (e.g. co-buy) are not copyable.
        prompt_token_sets = [set(row.tolist()) - {tok.pad_id} for row in prompt_ids]
        loss_terms: list[Tensor] = []
        gate_terms: list[Tensor] = []
        weight_total = 0.0
        rows = np.arange(len(batch))
        attn: Tensor | None = None
        for t in range(width):
            probs, state, attn, gate = self._step(
                dec_inputs[:, t], state, enc_states, enc_proj, mask, prompt_ids, attn
            )
            step_targets = target_arr[:, t]
            valid = (step_targets != tok.pad_id).astype(np.float64)
            picked = probs[rows, step_targets]
            loss_terms.append(-((picked + _EPS).log() * Tensor(valid)).sum())
            copyable = np.array(
                [1.0 if int(t_id) in prompt_token_sets[row] else 0.0
                 for row, t_id in enumerate(step_targets)]
            )
            gate_flat = gate.reshape(len(batch))
            gate_nll = -(
                (gate_flat + _EPS).log() * Tensor(copyable * valid)
                + (1.0 - gate_flat + _EPS).log() * Tensor((1.0 - copyable) * valid)
            ).sum()
            gate_terms.append(gate_nll)
            weight_total += valid.sum()
        total = loss_terms[0]
        for term in loss_terms[1:]:
            total = total + term
        gate_total = gate_terms[0]
        for term in gate_terms[1:]:
            gate_total = gate_total + term
        return (total + self.gate_loss_weight * gate_total) / max(weight_total, 1.0)

    # ------------------------------------------------------------------
    @staticmethod
    def _sample_top_k(prob_arr: np.ndarray, temperature: float, top_k: int,
                      rng: np.random.Generator) -> np.ndarray:
        """Sample per row from the temperature-scaled top-k distribution."""
        next_ids = np.zeros(prob_arr.shape[0], dtype=np.int64)
        for row in range(prob_arr.shape[0]):
            top = np.argpartition(prob_arr[row], -top_k)[-top_k:]
            logits = np.log(prob_arr[row, top] + _EPS) / temperature
            logits -= logits.max()
            weights = np.exp(logits)
            weights /= weights.sum()
            next_ids[row] = top[int(rng.choice(top_k, p=weights))]
        return next_ids

    def decode_batch(
        self,
        prompts: list[str],
        max_new_tokens: int = 14,
        temperature: float = 0.0,
        top_k: int = 8,
        rng: np.random.Generator | None = None,
    ) -> list[Generation]:
        """Pointer-attention decoding for a batch of prompts (decoding
        internal).

        ``temperature == 0`` is greedy; a positive temperature samples
        from the top-``top_k`` renormalized distribution (used by
        sample-and-rerank generation).
        """
        if not prompts:
            return []
        if temperature > 0 and rng is None:
            rng = spawn_rng(0, "seq2seq-sample")
        tok = self.tokenizer
        with no_grad():
            enc_states, state, mask, prompt_ids = self._encode_prompts(prompts)
            enc_proj = self.attn_enc(enc_states)
            current = np.full(len(prompts), tok.sep_id, dtype=np.int64)
            finished = np.zeros(len(prompts), dtype=bool)
            produced: list[list[int]] = [[] for _ in prompts]
            attn = None
            for _ in range(max_new_tokens):
                probs, state, attn, _gate = self._step(
                    current, state, enc_states, enc_proj, mask, prompt_ids, attn
                )
                prob_arr = probs.numpy()
                if temperature > 0:
                    next_ids = self._sample_top_k(prob_arr, temperature, top_k, rng)
                else:
                    next_ids = prob_arr.argmax(axis=-1)
                for row, token_id in enumerate(next_ids):
                    if finished[row]:
                        continue
                    if int(token_id) == tok.eos_id:
                        finished[row] = True
                    else:
                        produced[row].append(int(token_id))
                current = next_ids
                if finished.all():
                    break
        outputs = []
        for ids in produced:
            text = tok.decode(ids)
            tokens = len(ids)
            outputs.append(
                Generation(
                    text=f"{text}." if text else text,
                    tokens=tokens,
                    latency_s=self.latency.charge(self.parameter_count, max(tokens, 1)),
                )
            )
        return outputs

    def generate_batch(self, prompts: list[str]) -> GenerationBatch:
        """:class:`~repro.llm.interface.KnowledgeGenerator` entrypoint."""
        return GenerationBatch(generations=list(self.decode_batch(prompts)))

    def generate_knowledge(self, prompts: list[str],
                           max_new_tokens: int = 14) -> list[Generation]:
        """Deprecated shim over :meth:`generate_batch` (kept for
        offline/pipeline callers; serving code must use the batch
        entrypoint — the tombstone test pins this)."""
        return self.decode_batch(prompts, max_new_tokens=max_new_tokens)

    def generate(self, prompt: str, num_candidates: int = 1) -> list[Generation]:
        """Protocol-compatible single-prompt generation.

        Decoding internal; serving callers use :meth:`generate_batch`.
        """
        return [self.decode_batch([prompt])[0] for _ in range(num_candidates)]

    # ------------------------------------------------------------------
    def sequence_logprob(self, prompt: str, target: str) -> float:
        """Log p(target | prompt) under teacher forcing."""
        tok = self.tokenizer
        target_ids = tok.encode(target) + [tok.eos_id]
        with no_grad():
            enc_states, state, mask, prompt_ids = self._encode_prompts([prompt])
            enc_proj = self.attn_enc(enc_states)
            current = np.array([tok.sep_id], dtype=np.int64)
            total = 0.0
            attn = None
            for target_id in target_ids:
                probs, state, attn, _gate = self._step(
                    current, state, enc_states, enc_proj, mask, prompt_ids, attn
                )
                total += float(np.log(probs.numpy()[0, target_id] + _EPS))
                current = np.array([target_id], dtype=np.int64)
        return total

    def classify(self, prompt: str, choices: tuple[str, ...] = ("yes", "no")) -> str:
        """Pick the answer choice with highest conditional likelihood."""
        scores = {choice: self.sequence_logprob(prompt, choice) for choice in choices}
        return max(scores, key=scores.get)
