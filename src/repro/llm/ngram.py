"""Interpolated n-gram language model (the GPT-2 perplexity stand-in).

§3.3.1 filters incomplete generations by thresholding GPT-2 perplexity.
We train this model on well-formed knowledge sentences; truncated or
word-salad candidates then score high perplexity, which is the only
property the filter needs.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

from repro.utils.textproc import tokenize_words

__all__ = ["NGramLanguageModel"]

_BOS = "<s>"
_EOS = "</s>"


class NGramLanguageModel:
    """Interpolated unigram/bigram/trigram LM with add-k smoothing."""

    def __init__(
        self,
        order: int = 3,
        add_k: float = 0.1,
        interpolation: tuple[float, ...] = (0.2, 0.3, 0.5),
    ):
        if order != len(interpolation):
            raise ValueError("interpolation weights must match the order")
        if abs(sum(interpolation) - 1.0) > 1e-9:
            raise ValueError("interpolation weights must sum to 1")
        self.order = order
        self.add_k = add_k
        self.interpolation = interpolation
        self._counts: list[Counter[tuple[str, ...]]] = [Counter() for _ in range(order)]
        self._context_counts: list[Counter[tuple[str, ...]]] = [Counter() for _ in range(order)]
        self._vocab: set[str] = set()
        self._fitted = False

    def fit(self, corpus: Iterable[str]) -> "NGramLanguageModel":
        """Count n-grams over ``corpus`` sentences."""
        for sentence in corpus:
            tokens = self._pad(tokenize_words(sentence))
            self._vocab.update(tokens)
            for n in range(1, self.order + 1):
                for i in range(len(tokens) - n + 1):
                    gram = tuple(tokens[i : i + n])
                    self._counts[n - 1][gram] += 1
                    self._context_counts[n - 1][gram[:-1]] += 1
        self._fitted = True
        return self

    def _pad(self, tokens: list[str]) -> list[str]:
        return [_BOS] * (self.order - 1) + tokens + [_EOS]

    def _ngram_prob(self, gram: tuple[str, ...]) -> float:
        n = len(gram)
        count = self._counts[n - 1][gram]
        context = self._context_counts[n - 1][gram[:-1]]
        vocab_size = max(len(self._vocab), 1)
        return (count + self.add_k) / (context + self.add_k * vocab_size)

    def log_prob(self, text: str) -> float:
        """Total interpolated log probability (natural log) of ``text``."""
        if not self._fitted:
            raise RuntimeError("fit() must be called before scoring")
        tokens = self._pad(tokenize_words(text))
        total = 0.0
        for i in range(self.order - 1, len(tokens)):
            prob = 0.0
            for n in range(1, self.order + 1):
                gram = tuple(tokens[i - n + 1 : i + 1])
                prob += self.interpolation[n - 1] * self._ngram_prob(gram)
            total += math.log(max(prob, 1e-12))
        return total

    def perplexity(self, text: str) -> float:
        """Per-token perplexity; higher means less well-formed."""
        tokens = tokenize_words(text)
        if not tokens:
            return float("inf")
        # +1 accounts for the </s> transition, which is what penalizes
        # sentences cut off mid-phrase.
        return math.exp(-self.log_prob(text) / (len(tokens) + 1))
