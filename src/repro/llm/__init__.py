"""Language-model substrate: teacher LLM, n-gram filter LM, student LM."""

from repro.llm.interface import (
    Generation,
    GenerationTruth,
    KnowledgeGenerator,
    LanguageModel,
    LatencyModel,
)
from repro.llm.ngram import NGramLanguageModel
from repro.llm.seq2seq import Seq2SeqLM
from repro.llm.student import StudentLM
from repro.llm.teacher import QUALITY_MIX, TeacherLLM
from repro.llm.tokenizer import Tokenizer

__all__ = [
    "Generation",
    "GenerationTruth",
    "KnowledgeGenerator",
    "LanguageModel",
    "LatencyModel",
    "NGramLanguageModel",
    "Seq2SeqLM",
    "StudentLM",
    "TeacherLLM",
    "QUALITY_MIX",
    "Tokenizer",
]
