"""Language-model protocol, generation records, and the latency model.

The latency model is what makes the paper's inference-efficiency claims
(§1, §5: OPT-30b is "not feasible for online serving", COSMO-LM is) a
measurable quantity here: every generation is charged simulated seconds
proportional to parameter count × tokens produced, without wall-clock
sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

__all__ = [
    "GenerationTruth",
    "Generation",
    "LanguageModel",
    "KnowledgeGenerator",
    "LatencyModel",
]


@dataclass(frozen=True)
class GenerationTruth:
    """Hidden oracle record attached to every teacher generation.

    ``quality`` ∈ {"typical", "plausible", "one_sided", "generic",
    "paraphrase", "implausible", "incomplete"}.  Only the annotation
    simulator (the stand-in for human annotators) and evaluation code may
    read it; the extraction pipeline itself never does.
    """

    quality: str
    intent_id: str | None = None


@dataclass(frozen=True)
class Generation:
    """One model output with accounting metadata."""

    text: str
    tokens: int
    latency_s: float
    truth: GenerationTruth | None = None


class LanguageModel(Protocol):
    """Anything that can continue a prompt."""

    name: str
    parameter_count: int

    def generate(self, prompt: str, num_candidates: int = 1) -> list[Generation]:
        """Produce ``num_candidates`` continuations of ``prompt``."""
        ...  # pragma: no cover


@runtime_checkable
class KnowledgeGenerator(Protocol):
    """The serving-facing generation surface.

    ``generate_knowledge(prompts)`` is the *sole* entrypoint the serving
    stack (``CosmoService``, ``ResilientGenerator``, ``FlakyGenerator``,
    ``CosmoCluster``) calls; the per-model ``generate`` /
    ``generate_batch`` methods are decoding internals and deprecated as
    serving entrypoints.  Implementations must also expose a ``latency``
    :class:`LatencyModel` (simulated-seconds accounting) — not part of
    the runtime check because data members cannot be runtime-checked on
    every supported Python version, but required by every caller.
    """

    def generate_knowledge(self, prompts: list[str]) -> list[Generation]:
        """Answer a batch of prompts, one :class:`Generation` each."""
        ...  # pragma: no cover


@dataclass
class LatencyModel:
    """Simulated per-token inference latency.

    ``seconds_per_token_per_billion_params`` calibrates the linear model;
    the default puts OPT-30b at ~0.45 s/token and a 7M-parameter student
    at ~0.1 ms/token, preserving the orders-of-magnitude gap that drives
    the paper's serving design.
    """

    seconds_per_token_per_billion_params: float = 0.015
    overhead_s: float = 0.002
    total_simulated_s: float = field(default=0.0, init=False)

    def charge(self, parameter_count: int, tokens: int) -> float:
        """Account for one generation; returns its simulated latency."""
        billions = parameter_count / 1e9
        latency = self.overhead_s + tokens * billions * self.seconds_per_token_per_billion_params
        self.total_simulated_s += latency
        return latency

    def charge_seconds(self, seconds: float) -> float:
        """Account for a fixed simulated delay (timeouts, stalls, slowdowns)."""
        self.total_simulated_s += seconds
        return seconds

    def reset(self) -> None:
        self.total_simulated_s = 0.0
