"""Language-model protocol, generation records, and the latency model.

The latency model is what makes the paper's inference-efficiency claims
(§1, §5: OPT-30b is "not feasible for online serving", COSMO-LM is) a
measurable quantity here: every generation is charged simulated seconds
proportional to parameter count × tokens produced, without wall-clock
sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

__all__ = [
    "GenerationTruth",
    "Generation",
    "GenerationBatch",
    "LanguageModel",
    "KnowledgeGenerator",
    "LatencyModel",
]


@dataclass(frozen=True)
class GenerationTruth:
    """Hidden oracle record attached to every teacher generation.

    ``quality`` ∈ {"typical", "plausible", "one_sided", "generic",
    "paraphrase", "implausible", "incomplete"}.  Only the annotation
    simulator (the stand-in for human annotators) and evaluation code may
    read it; the extraction pipeline itself never does.
    """

    quality: str
    intent_id: str | None = None


@dataclass(frozen=True)
class Generation:
    """One model output with accounting metadata."""

    text: str
    tokens: int
    latency_s: float
    truth: GenerationTruth | None = None


@dataclass
class GenerationBatch:
    """Per-prompt result of one batched generation call.

    The unified result type of the ``generate_batch`` protocol method:
    raw models return all-successful batches (``attempts == 1``, every
    slot filled), while the resilience layer fills in retry accounting
    and leaves ``None`` in the slots whose prompts exhausted their
    budget.  ``breaker_refused`` marks a batch the circuit breaker
    turned away before any attempt ran.
    """

    generations: list[Generation | None]
    attempts: int = 1
    retries: int = 0
    errors: int = 0
    rejected: int = 0
    breaker_refused: bool = False
    wait_s: float = 0.0

    def __len__(self) -> int:
        return len(self.generations)

    @property
    def failed_indices(self) -> list[int]:
        return [i for i, g in enumerate(self.generations) if g is None]

    @property
    def ok(self) -> bool:
        return not self.failed_indices

    def require(self) -> list[Generation]:
        """The generations, asserting every prompt succeeded."""
        failed = self.failed_indices
        if failed:
            raise RuntimeError(
                f"{len(failed)}/{len(self.generations)} prompts failed "
                f"after {self.attempts} attempts"
            )
        return [g for g in self.generations if g is not None]


class LanguageModel(Protocol):
    """Anything that can continue a prompt."""

    name: str
    parameter_count: int

    def generate(self, prompt: str, num_candidates: int = 1) -> list[Generation]:
        """Produce ``num_candidates`` continuations of ``prompt``."""
        ...  # pragma: no cover


@runtime_checkable
class KnowledgeGenerator(Protocol):
    """The serving-facing generation surface.

    ``generate_batch(prompts) -> GenerationBatch`` is the *sole*
    entrypoint the serving stack (``CosmoService``,
    ``ResilientGenerator``, ``FlakyGenerator``, ``CosmoCluster``) calls;
    the per-model ``generate`` / ``decode_batch`` methods are decoding
    internals, and ``generate_knowledge`` survives only as a deprecated
    thin shim over ``generate_batch`` (the tombstone test pins that no
    in-repo serving code calls it).  Implementations must also expose a
    ``latency`` :class:`LatencyModel` (simulated-seconds accounting) —
    not part of the runtime check because data members cannot be
    runtime-checked on every supported Python version, but required by
    every caller.
    """

    def generate_batch(self, prompts: list[str]) -> "GenerationBatch":
        """Answer a batch of prompts, one slot per prompt."""
        ...  # pragma: no cover


@dataclass
class LatencyModel:
    """Simulated per-token inference latency.

    ``seconds_per_token_per_billion_params`` calibrates the linear model;
    the default puts OPT-30b at ~0.45 s/token and a 7M-parameter student
    at ~0.1 ms/token, preserving the orders-of-magnitude gap that drives
    the paper's serving design.
    """

    seconds_per_token_per_billion_params: float = 0.015
    overhead_s: float = 0.002
    total_simulated_s: float = field(default=0.0, init=False)

    def charge(self, parameter_count: int, tokens: int) -> float:
        """Account for one generation; returns its simulated latency."""
        billions = parameter_count / 1e9
        latency = self.overhead_s + tokens * billions * self.seconds_per_token_per_billion_params
        self.total_simulated_s += latency
        return latency

    def charge_seconds(self, seconds: float) -> float:
        """Account for a fixed simulated delay (timeouts, stalls, slowdowns)."""
        self.total_simulated_s += seconds
        return seconds

    def reset(self) -> None:
        self.total_simulated_s = 0.0
