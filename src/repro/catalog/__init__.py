"""Synthetic 18-domain e-commerce catalog: domains, products, queries."""

from repro.catalog.domains import DOMAIN_NAMES, Domain, all_domains, get_domain
from repro.catalog.products import Product, ProductCatalog, build_catalog
from repro.catalog.queries import Query, QueryLog, SpecificityService, build_queries

__all__ = [
    "DOMAIN_NAMES",
    "Domain",
    "all_domains",
    "get_domain",
    "Product",
    "ProductCatalog",
    "build_catalog",
    "Query",
    "QueryLog",
    "SpecificityService",
    "build_queries",
]
