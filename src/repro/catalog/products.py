"""Synthetic product catalog.

Products are generated per domain with a *browse-node*-like product type
(§3.2.1), a composed title (brand + attribute modifiers + type), a
Zipf-like popularity, and ground-truth intent assignments drawn from the
domain's intent pool.  Titles deliberately contain only brand/attribute/
type tokens — never activity vocabulary — so the query↔product semantic
gap the paper motivates (§4.1) is real in this world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.catalog.domains import Domain, all_domains
from repro.catalog.vocab import BRANDS, MODIFIERS
from repro.utils.rng import spawn_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.behavior.intents import Intent, IntentSpace

__all__ = ["Product", "ProductCatalog", "build_catalog"]

# Intents assigned to each product type (its "purpose pool").
_INTENTS_PER_TYPE = (4, 7)
# Intents each individual product serves, sampled from its type pool.
# Real products have several facets; this is also what makes co-buy
# explanations genuinely ambiguous (the teacher's one-sided failure mode).
_INTENTS_PER_PRODUCT = (2, 4)


@dataclass(frozen=True)
class Product:
    """One catalog item."""

    product_id: str
    domain: str
    product_type: str
    brand: str
    title: str
    attributes: tuple[str, ...]
    popularity: float
    intent_ids: tuple[str, ...]


class ProductCatalog:
    """Indexed access to all generated products."""

    def __init__(self, products: list[Product]):
        self._products = {p.product_id: p for p in products}
        self._by_domain: dict[str, list[Product]] = {}
        self._by_type: dict[tuple[str, str], list[Product]] = {}
        self._by_intent: dict[str, list[Product]] = {}
        for product in products:
            self._by_domain.setdefault(product.domain, []).append(product)
            self._by_type.setdefault((product.domain, product.product_type), []).append(product)
            for intent_id in product.intent_ids:
                self._by_intent.setdefault(intent_id, []).append(product)

    def __len__(self) -> int:
        return len(self._products)

    def __contains__(self, product_id: str) -> bool:
        return product_id in self._products

    def get(self, product_id: str) -> Product:
        return self._products[product_id]

    def all(self) -> list[Product]:
        return list(self._products.values())

    def for_domain(self, domain: str) -> list[Product]:
        return list(self._by_domain.get(domain, []))

    def for_type(self, domain: str, product_type: str) -> list[Product]:
        return list(self._by_type.get((domain, product_type), []))

    def serving_intent(self, intent_id: str) -> list[Product]:
        """Products whose ground truth includes ``intent_id``."""
        return list(self._by_intent.get(intent_id, []))

    def product_types(self, domain: str) -> list[str]:
        return sorted({p.product_type for p in self.for_domain(domain)})


def _type_intent_pools(
    domain: Domain,
    intents: "list[Intent]",
    rng: np.random.Generator,
) -> dict[str, list[str]]:
    """Assign each product type a pool of compatible intent ids.

    Every intent is guaranteed at least one type so no knowledge is
    unreachable, then types draw additional intents at random.
    """
    pools: dict[str, list[str]] = {ptype: [] for ptype in domain.product_types}
    types = list(domain.product_types)
    intent_ids = [intent.intent_id for intent in intents]
    # Spread every intent over ~3 types so broad (intent-verbalizing)
    # queries genuinely match several product types — the breadth the
    # specificity service measures.
    for index, intent_id in enumerate(intent_ids):
        for hop in range(3):
            pools[types[(index + hop * 5) % len(types)]].append(intent_id)
    for ptype in types:
        want = int(rng.integers(*_INTENTS_PER_TYPE, endpoint=True))
        while len(pools[ptype]) < want and intent_ids:
            candidate = intent_ids[int(rng.integers(len(intent_ids)))]
            if candidate not in pools[ptype]:
                pools[ptype].append(candidate)
    return pools


def build_catalog(
    intent_space: "IntentSpace",
    products_per_domain: int = 60,
    seed: int = 0,
) -> ProductCatalog:
    """Generate the full 18-domain catalog.

    Popularity follows a Pareto distribution so top-tier product sampling
    (§3.2.1) has real head/tail structure to select from.
    """
    rng = spawn_rng(seed, "catalog")
    products: list[Product] = []
    for domain_index, domain in enumerate(all_domains()):
        intents = intent_space.for_domain(domain.name)
        pools = _type_intent_pools(domain, intents, rng)
        for item_index in range(products_per_domain):
            ptype = domain.product_types[item_index % len(domain.product_types)]
            brand = BRANDS[int(rng.integers(len(BRANDS)))]
            n_attrs = int(rng.integers(1, 3))
            attr_idx = rng.choice(len(MODIFIERS), size=n_attrs, replace=False)
            attributes = tuple(MODIFIERS[int(i)] for i in attr_idx)
            title = " ".join((brand, *attributes, ptype))
            pool = pools[ptype]
            n_intents = min(
                int(rng.integers(*_INTENTS_PER_PRODUCT, endpoint=True)), len(pool)
            )
            chosen = rng.choice(len(pool), size=max(n_intents, 1), replace=False) if pool else []
            intent_ids = tuple(pool[int(i)] for i in chosen)
            popularity = float(rng.pareto(1.5) + 0.1)
            products.append(
                Product(
                    product_id=f"p{domain_index:02d}-{item_index:04d}",
                    domain=domain.name,
                    product_type=ptype,
                    brand=brand,
                    title=title,
                    attributes=attributes,
                    popularity=popularity,
                    intent_ids=intent_ids,
                )
            )
    return ProductCatalog(products)
