"""Domain registry: typed access to the 18-category world specification."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.vocab import DOMAIN_SPECS, DOMAINS
from repro.core.relations import TailType

__all__ = ["Domain", "all_domains", "get_domain", "DOMAIN_NAMES"]

DOMAIN_NAMES: tuple[str, ...] = DOMAINS

# vocab bank key → tail type of the phrases it contains.
_BANK_TAIL_TYPES: dict[str, TailType] = {
    "functions": TailType.FUNCTION,
    "activities": TailType.ACTIVITY,
    "audiences": TailType.AUDIENCE,
    "locations": TailType.LOCATION,
    "times": TailType.TIME,
    "body_parts": TailType.BODY_PART,
    "interests": TailType.INTEREST,
    "complements": TailType.COMPLEMENT,
}


@dataclass(frozen=True)
class Domain:
    """One of the 18 major Amazon categories of Table 3."""

    name: str
    product_types: tuple[str, ...]
    intent_banks: dict[TailType, tuple[str, ...]] = field(hash=False)

    def tail_phrases(self, tail_type: TailType) -> tuple[str, ...]:
        """Phrases usable as tails of ``tail_type`` in this domain."""
        if tail_type == TailType.CONCEPT:
            return self.product_types
        return self.intent_banks.get(tail_type, ())


def _build_registry() -> dict[str, Domain]:
    registry: dict[str, Domain] = {}
    for name in DOMAINS:
        spec = DOMAIN_SPECS[name]
        banks = {
            tail_type: tuple(spec.get(bank_key, ()))
            for bank_key, tail_type in _BANK_TAIL_TYPES.items()
        }
        registry[name] = Domain(
            name=name,
            product_types=tuple(spec["product_types"]),
            intent_banks=banks,
        )
    return registry


_REGISTRY = _build_registry()


def all_domains() -> list[Domain]:
    """All 18 domains in Table 3 order."""
    return [_REGISTRY[name] for name in DOMAINS]


def get_domain(name: str) -> Domain:
    """Look up a domain by its exact Table 3 name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown domain {name!r}; valid domains: {list(DOMAINS)}") from None
