"""Synthetic search queries and the query-specificity service.

Two query populations mirror §3.2.1:

* **broad** queries verbalize an *intent* with intent-side vocabulary
  ("winter camping essentials", "gifts for cat owners") and match many
  product types — these are the valuable, ambiguous ones COSMO targets;
* **specific** queries name a product type directly ("waterproof hiking
  boots") and match one type.

The :class:`SpecificityService` stands in for the in-house Amazon Search
service the paper uses to score query breadth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.catalog.domains import all_domains
from repro.catalog.products import ProductCatalog
from repro.catalog.vocab import MODIFIERS
from repro.core.relations import TailType
from repro.utils.rng import spawn_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.behavior.intents import IntentSpace

__all__ = [
    "Query",
    "QueryLog",
    "SpecificityService",
    "build_queries",
    "render_broad_query",
]

# Broad-query templates per tail type; "{}" is the intent tail.
_BROAD_TEMPLATES: dict[TailType, tuple[str, ...]] = {
    TailType.ACTIVITY: ("{}", "{} essentials", "things for {}", "{} gear"),
    TailType.FUNCTION: ("something to {}", "help to {}"),
    TailType.AUDIENCE: ("gifts for {}", "ideas for {}"),
    TailType.LOCATION: ("{} must haves", "stuff for the {}"),
    TailType.TIME: ("{} shopping", "ready for {}"),
    TailType.INTEREST: ("{} ideas", "{} supplies"),
    TailType.BODY_PART: ("care for {}",),
    TailType.COMPLEMENT: ("{}",),
    TailType.CONCEPT: ("{}",),
}


def render_broad_query(tail_type: TailType, tail: str, rng: np.random.Generator) -> str:
    """Verbalize an intent tail as a broad query, with random phrasing."""
    templates = _BROAD_TEMPLATES[tail_type]
    return templates[int(rng.integers(len(templates)))].format(tail)


@dataclass(frozen=True)
class Query:
    """A search query with its ground-truth provenance.

    Broad queries carry the intent they verbalize (``intent_id``);
    specific queries carry the ``product_type`` they name.
    """

    query_id: str
    text: str
    domain: str
    breadth: str  # "broad" | "specific"
    intent_id: str | None
    product_type: str | None
    popularity: float


class QueryLog:
    """Indexed access to the generated query population."""

    def __init__(self, queries: list[Query]):
        self._queries = {q.query_id: q for q in queries}
        self._by_domain: dict[str, list[Query]] = {}
        for query in queries:
            self._by_domain.setdefault(query.domain, []).append(query)

    def __len__(self) -> int:
        return len(self._queries)

    def get(self, query_id: str) -> Query:
        return self._queries[query_id]

    def all(self) -> list[Query]:
        return list(self._queries.values())

    def for_domain(self, domain: str) -> list[Query]:
        return list(self._by_domain.get(domain, []))

    def broad(self, domain: str | None = None) -> list[Query]:
        return [
            q
            for q in self._queries.values()
            if q.breadth == "broad" and (domain is None or q.domain == domain)
        ]


def build_queries(
    intent_space: "IntentSpace",
    catalog: ProductCatalog,
    broad_per_domain: int = 30,
    specific_per_domain: int = 30,
    seed: int = 0,
) -> QueryLog:
    """Generate broad and specific queries for every domain."""
    rng = spawn_rng(seed, "queries")
    queries: list[Query] = []
    for domain_index, domain in enumerate(all_domains()):
        intents = intent_space.for_domain(domain.name)
        counter = 0
        for _ in range(broad_per_domain):
            intent = intents[int(rng.integers(len(intents)))]
            templates = _BROAD_TEMPLATES[intent.tail_type]
            template = templates[int(rng.integers(len(templates)))]
            queries.append(
                Query(
                    query_id=f"q{domain_index:02d}-{counter:04d}",
                    text=template.format(intent.tail),
                    domain=domain.name,
                    breadth="broad",
                    intent_id=intent.intent_id,
                    product_type=None,
                    popularity=float(rng.pareto(1.2) + 0.1),
                )
            )
            counter += 1
        types = catalog.product_types(domain.name)
        for _ in range(specific_per_domain):
            ptype = types[int(rng.integers(len(types)))]
            if rng.random() < 0.5:
                modifier = MODIFIERS[int(rng.integers(len(MODIFIERS)))]
                text = f"{modifier} {ptype}"
            else:
                text = ptype
            queries.append(
                Query(
                    query_id=f"q{domain_index:02d}-{counter:04d}",
                    text=text,
                    domain=domain.name,
                    breadth="specific",
                    intent_id=None,
                    product_type=ptype,
                    popularity=float(rng.pareto(1.2) + 0.1),
                )
            )
            counter += 1
    return QueryLog(queries)


class SpecificityService:
    """Scores how specific a query is (stand-in for the in-house service).

    Specificity is the reciprocal of how many distinct product types the
    query's matching products span: a query matching a single type scores
    1.0; one whose intent is served by many types scores near 0.
    """

    def __init__(self, catalog: ProductCatalog):
        self._catalog = catalog

    def matching_types(self, query: Query) -> set[str]:
        """Distinct product types matched by the query."""
        if query.breadth == "specific" and query.product_type is not None:
            return {query.product_type}
        if query.intent_id is not None:
            return {
                product.product_type
                for product in self._catalog.serving_intent(query.intent_id)
            }
        return set()

    def score(self, query: Query) -> float:
        """Specificity in (0, 1]; higher means narrower."""
        n_types = len(self.matching_types(query))
        if n_types == 0:
            # Unmatchable queries are treated as maximally broad.
            return 0.0
        return 1.0 / n_types
