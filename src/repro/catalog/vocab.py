"""Per-domain lexicons for the synthetic e-commerce world.

The paper's 18 major Amazon categories (Table 3) each get a compact word
bank: product types (with characteristic attribute words) and intent
phrases bucketed by the tail types of Table 2 (function, activity,
audience, location, time, body part, interest, complement).  All synthetic
products, queries and knowledge tails are composed from these banks, so
the vocabulary statistics — and crucially the *semantic gap* between
query-side activity words and product-side title words — are controlled.
"""

from __future__ import annotations

__all__ = ["DOMAINS", "DOMAIN_SPECS", "BRANDS", "MODIFIERS", "GENERIC_TAILS"]

# The 18 category names exactly as Table 3 lists them.
DOMAINS: tuple[str, ...] = (
    "Clothing, Shoes & Jewelry",
    "Sports & Outdoors",
    "Home & Kitchen",
    "Patio, Lawn & Garden",
    "Tools & Home Improvement",
    "Musical Instruments",
    "Industrial & Scientific",
    "Automotive",
    "Electronics",
    "Baby Products",
    "Arts, Crafts & Sewing",
    "Health & Household",
    "Toys & Games",
    "Video Games",
    "Grocery & Gourmet Food",
    "Office Products",
    "Pet Supplies",
    "Others",
)

# Brand tokens shared across domains; titles read "<brand> <attrs> <type>".
BRANDS: tuple[str, ...] = (
    "acmetek", "norvik", "zelora", "brightpeak", "holloway", "quintro",
    "verano", "lumastra", "peakforge", "oakline", "sundale", "averix",
    "calmora", "dryft", "eastbay", "fenwick", "glenmor", "harbin",
)

# Attribute modifiers used in titles and specific queries.
MODIFIERS: tuple[str, ...] = (
    "premium", "compact", "heavy duty", "lightweight", "adjustable",
    "waterproof", "portable", "ergonomic", "rechargeable", "foldable",
    "stainless steel", "wireless", "organic", "insulated", "non slip",
)

# Intent refinement modifiers (drive the Figure 8 hierarchy: a coarse
# activity such as "camping" expands to "winter camping" etc.).
ACTIVITY_MODIFIERS: tuple[str, ...] = (
    "winter", "summer", "indoor", "outdoor", "family", "beginner",
    "professional", "weekend", "overnight", "lakeside", "mountain",
)

# Generic, unhelpful tails the teacher LLM sometimes emits (§1): these are
# exactly the failure modes the refinement stage must remove.
GENERIC_TAILS: tuple[str, ...] = (
    "used for the same reason",
    "because they like them",
    "because customers often buy them together",
    "used for many things",
    "because it is a good product",
    "because it was on sale",
    "used with other products",
    "because people need it",
)

# Each spec: product types (name -> complement type), and intent banks.
# Intent banks follow Table 2 tail types.
DOMAIN_SPECS: dict[str, dict] = {
    "Clothing, Shoes & Jewelry": {
        "product_types": (
            "running shoes", "dress shirt", "rain jacket", "wool sweater",
            "denim jeans", "leather belt", "silver necklace", "hiking boots",
            "ankle socks", "baseball cap", "normal suit", "winter coat",
        ),
        "functions": (
            "keep warm", "provide arch support", "prevent blisters",
            "wick away sweat", "protect from rain", "match formal outfits",
        ),
        "activities": (
            "attend a wedding party", "go jogging", "hiking", "biking",
            "commute to work", "travel abroad", "attend a job interview",
        ),
        "audiences": ("runners", "office workers", "brides", "teenagers"),
        "locations": ("gym", "office", "trail"),
        "times": ("late winter", "rainy season", "summer"),
        "body_parts": ("feet", "sensitive skin", "ankles"),
        "interests": ("fashion", "outdoor sports"),
        "complements": ("shoe laces", "garment bag", "jewelry box"),
    },
    "Sports & Outdoors": {
        "product_types": (
            "air mattress", "camping tent", "sleeping bag", "yoga mat",
            "water bottle", "trekking poles", "fishing rod", "kayak paddle",
            "resistance bands", "camping stove", "headlamp", "winter boots",
        ),
        "functions": (
            "provide arch support", "keep drinks cold", "hold a lot of weight",
            "provide insulation from the ground", "light up the campsite",
        ),
        "activities": (
            "camping", "hiking", "fishing", "yoga practice", "trail running",
            "kayaking", "backpacking", "rock climbing",
        ),
        "audiences": ("campers", "hikers", "anglers", "climbers"),
        "locations": ("campsite", "lakeside", "mountain trail"),
        "times": ("summer", "early spring", "late winter"),
        "body_parts": ("knees", "back", "feet"),
        "interests": ("outdoor adventure", "fitness"),
        "complements": ("tent stakes", "paddle leash", "mat strap"),
    },
    "Home & Kitchen": {
        "product_types": (
            "chef knife", "cutting board", "vegetable peeler", "air fryer",
            "coffee grinder", "mixing bowl", "storage container", "bed sheet",
            "throw pillow", "table lamp", "spice rack", "dish rack",
        ),
        "functions": (
            "peel potatoes", "chop vegetables", "hold snacks", "grind coffee beans",
            "keep leftovers fresh", "brighten the room",
        ),
        "activities": (
            "host a dinner party", "meal prep for the week", "bake bread",
            "organize the pantry", "redecorate the bedroom",
        ),
        "audiences": ("home cooks", "new homeowners", "baking enthusiasts"),
        "locations": ("kitchen", "bedroom", "dining room"),
        "times": ("holiday season", "weekend mornings"),
        "body_parts": ("hands",),
        "interests": ("cooking", "home decor"),
        "complements": ("knife sharpener", "lamp shade", "bowl lid"),
    },
    "Patio, Lawn & Garden": {
        "product_types": (
            "garden hose", "pruning shears", "patio umbrella", "bird feeder",
            "lawn mower blade", "planter box", "hammock", "fire pit",
            "fence post", "weed barrier", "watering can", "string lights",
        ),
        "functions": (
            "water the flower beds", "trim rose bushes", "provide shade",
            "attract songbirds", "build a fence",
        ),
        "activities": (
            "hang out in the backyard", "host a barbecue", "grow vegetables",
            "landscape the yard", "evening gatherings",
        ),
        "audiences": ("gardeners", "homeowners", "bird watchers"),
        "locations": ("backyard", "patio", "greenhouse"),
        "times": ("early spring", "summer evenings"),
        "body_parts": ("hands", "back"),
        "interests": ("gardening", "outdoor living"),
        "complements": ("hose nozzle", "umbrella base", "feeder pole"),
    },
    "Tools & Home Improvement": {
        "product_types": (
            "cordless drill", "screwdriver set", "stud finder", "utility knife",
            "sharpening stone", "paint roller", "work gloves", "tape measure",
            "circular saw", "tool box", "led shop light", "caulking gun",
        ),
        "functions": (
            "sharpen scissors", "drill pilot holes", "find wall studs",
            "measure lumber", "seal window gaps",
        ),
        "activities": (
            "build a fence", "renovate the bathroom", "hang drywall",
            "assemble furniture", "weekend diy projects",
        ),
        "audiences": ("diy enthusiasts", "contractors", "woodworkers"),
        "locations": ("garage", "workshop", "basement"),
        "times": ("weekend afternoons",),
        "body_parts": ("hands",),
        "interests": ("woodworking", "home improvement"),
        "complements": ("drill bits", "saw blades", "roller covers"),
    },
    "Musical Instruments": {
        "product_types": (
            "acoustic guitar", "guitar strings", "keyboard stand", "microphone",
            "drum sticks", "violin bow", "ukulele", "guitar tuner",
            "audio interface", "music stand", "capo", "metronome",
        ),
        "functions": (
            "keep the guitar in tune", "hold sheet music", "record vocals",
            "practice quietly",
        ),
        "activities": (
            "play at a wedding party", "practice scales", "record a demo",
            "busking downtown", "join a band",
        ),
        "audiences": ("beginner guitarists", "music teachers", "street performers"),
        "locations": ("home studio", "rehearsal room"),
        "times": ("evening practice",),
        "body_parts": ("fingers",),
        "interests": ("songwriting", "live music"),
        "complements": ("guitar picks", "mic cable", "stand bag"),
    },
    "Industrial & Scientific": {
        "product_types": (
            "digital caliper", "safety goggles", "nitrile gloves", "ball bearing",
            "shelving rack", "label printer", "torque wrench", "ph meter",
            "vacuum pump", "heat gun", "load strap", "filter cartridge",
        ),
        "functions": (
            "hold a lot of weight", "measure within tolerance",
            "protect eyes from debris", "keep samples sterile",
        ),
        "activities": (
            "calibrate lab equipment", "organize a warehouse",
            "run quality inspections", "maintain machinery",
        ),
        "audiences": ("lab technicians", "warehouse managers", "machinists"),
        "locations": ("laboratory", "warehouse", "factory floor"),
        "times": ("maintenance windows",),
        "body_parts": ("eyes", "hands"),
        "interests": ("precision measurement",),
        "complements": ("replacement tips", "calibration weights", "rack shelves"),
    },
    "Automotive": {
        "product_types": (
            "car jack", "socket wrench", "motor oil", "wiper blades",
            "tire inflator", "jumper cables", "seat cover", "floor mats",
            "obd scanner", "car wax", "trailer hitch", "shovel",
        ),
        "functions": (
            "dig a hole", "lift the car safely", "restore the paint shine",
            "read engine codes", "keep tires at pressure",
        ),
        "activities": (
            "change the oil at home", "detail the car", "road trips",
            "tow a small trailer", "winterize the car",
        ),
        "audiences": ("car owners", "mechanics", "off road drivers"),
        "locations": ("garage", "driveway"),
        "times": ("late winter", "before road trips"),
        "body_parts": ("hands",),
        "interests": ("car maintenance",),
        "complements": ("oil filter", "socket extensions", "wax applicator"),
    },
    "Electronics": {
        "product_types": (
            "camera case", "screen protector glass", "usb hub", "wireless mouse",
            "bluetooth speaker", "hdmi cable", "power bank", "webcam",
            "smart watch", "noise cancelling headphones", "router", "tripod",
        ),
        "functions": (
            "provide protection for camera", "extend battery life",
            "stabilize video shots", "track calories burned",
            "block out airplane noise",
        ),
        "activities": (
            "work from home", "travel photography", "video conferencing",
            "stream music outdoors", "monitor workouts",
        ),
        "audiences": ("photographers", "remote workers", "commuters"),
        "locations": ("home office", "airplane"),
        "times": ("during commutes",),
        "body_parts": ("ears", "wrist"),
        "interests": ("photography", "smart home tech"),
        "complements": ("lens cloth", "cable organizer", "watch band"),
    },
    "Baby Products": {
        "product_types": (
            "baby monitor", "diaper bag", "bottle warmer", "crib sheet",
            "baby socks", "pacifier clip", "high chair", "stroller organizer",
            "nursing pillow", "baby bathtub", "teething ring", "swaddle blanket",
        ),
        "functions": (
            "keep the baby's feet dry", "soothe sore gums",
            "warm milk evenly", "hear the baby from another room",
        ),
        "activities": (
            "prepare the nursery", "travel with an infant", "night feedings",
            "bath time",
        ),
        "audiences": ("new parents", "pregnant women", "daycare workers"),
        "locations": ("nursery", "daycare"),
        "times": ("night time", "first months"),
        "body_parts": ("gums", "sensitive skin"),
        "interests": ("parenting",),
        "complements": ("monitor mount", "bottle brush", "crib mattress pad"),
    },
    "Arts, Crafts & Sewing": {
        "product_types": (
            "sewing machine needles", "fabric scissors", "embroidery hoop",
            "acrylic paint set", "rubber stamps", "glue gun", "knitting needles",
            "canvas panels", "washi tape", "bead assortment", "quilting ruler",
            "yarn skein",
        ),
        "functions": (
            "stamp on fabric", "cut through denim", "hold fabric taut",
            "blend colors smoothly",
        ),
        "activities": (
            "quilt a blanket", "scrapbooking", "knit a sweater",
            "paint landscapes", "handmade gifts",
        ),
        "audiences": ("quilters", "scrapbookers", "art students"),
        "locations": ("craft room", "studio"),
        "times": ("holiday season",),
        "body_parts": ("hands",),
        "interests": ("crafting", "diy gifts"),
        "complements": ("bobbins", "paint brushes", "stamp ink pads"),
    },
    "Health & Household": {
        "product_types": (
            "facial cleanser", "vitamin gummies", "hand sanitizer", "towel set",
            "digital thermometer", "laundry detergent", "moisturizing cream",
            "first aid kit", "air purifier filter", "bath towel", "sunscreen",
            "herbal tea",
        ),
        "functions": (
            "dry face", "hydrate the skin", "support the immune system",
            "remove tough stains", "filter indoor air",
        ),
        "activities": (
            "morning skincare routine", "cold and flu season prep",
            "deep clean the house", "wind down before bed",
        ),
        "audiences": ("people with sensitive skin", "allergy sufferers", "busy parents"),
        "locations": ("bathroom", "laundry room"),
        "times": ("flu season", "every morning"),
        "body_parts": ("sensitive skin", "face", "hands"),
        "interests": ("herbal medicine", "wellness"),
        "complements": ("cotton pads", "pill organizer", "towel hooks"),
    },
    "Toys & Games": {
        "product_types": (
            "building blocks", "board game", "stuffed animal", "puzzle set",
            "toy kite", "remote control car", "play dough", "card game",
            "dollhouse", "water gun", "train set", "foam darts",
        ),
        "functions": (
            "fly in the air", "develop fine motor skills",
            "keep kids busy on rainy days", "spark imaginative play",
        ),
        "activities": (
            "family game night", "birthday parties", "backyard play",
            "road trip entertainment",
        ),
        "audiences": ("toddlers", "board game fans", "grandparents"),
        "locations": ("playroom", "backyard"),
        "times": ("rainy days", "holiday season"),
        "body_parts": (),
        "interests": ("strategy games", "collecting"),
        "complements": ("extra darts", "puzzle mat", "battery pack"),
    },
    "Video Games": {
        "product_types": (
            "gaming headset", "controller grip", "headset stand", "gaming mouse pad",
            "console skin", "charging dock", "capture card", "gaming chair cushion",
            "thumbstick caps", "link cable", "memory card", "vr lens cover",
        ),
        "functions": (
            "protect the headset", "charge two controllers at once",
            "reduce hand fatigue", "record gameplay",
        ),
        "activities": (
            "late night gaming sessions", "streaming on weekends",
            "competitive ranked play", "couch co op",
        ),
        "audiences": ("streamers", "competitive gamers", "casual players"),
        "locations": ("gaming desk", "living room"),
        "times": ("weekend evenings",),
        "body_parts": ("wrists", "ears"),
        "interests": ("esports", "speedrunning"),
        "complements": ("headset cable", "dock adapter", "mouse feet"),
    },
    "Grocery & Gourmet Food": {
        "product_types": (
            "olive oil", "potato chips", "herbal tea", "coffee beans",
            "pasta sauce", "protein bars", "hot sauce", "trail mix",
            "baking flour", "maple syrup", "rice crackers", "dark chocolate",
        ),
        "functions": (
            "make potato chips", "add smoky flavor", "quick energy between meals",
            "brew a strong morning cup",
        ),
        "activities": (
            "weeknight dinners", "afternoon snacking", "weekend baking",
            "hosting brunch", "meal prep",
        ),
        "audiences": ("home bakers", "coffee lovers", "busy professionals"),
        "locations": ("pantry", "office desk"),
        "times": ("breakfast", "late afternoon"),
        "body_parts": (),
        "interests": ("gourmet cooking", "healthy snacking"),
        "complements": ("oil dispenser", "tea infuser", "coffee filters"),
    },
    "Office Products": {
        "product_types": (
            "gel pens", "sticky notes", "desk organizer", "notebook",
            "stapler", "file folders", "whiteboard", "paper shredder",
            "desk lamp", "binder clips", "printer paper", "planner",
        ),
        "functions": (
            "write down important information", "keep the desk tidy",
            "shred sensitive documents", "plan the week ahead",
        ),
        "activities": (
            "take meeting notes", "organize tax paperwork", "study for exams",
            "brainstorm on the whiteboard",
        ),
        "audiences": ("students", "accountants", "teachers"),
        "locations": ("home office", "classroom"),
        "times": ("tax season", "back to school"),
        "body_parts": ("hands",),
        "interests": ("stationery", "productivity"),
        "complements": ("pen refills", "staples", "dry erase markers"),
    },
    "Pet Supplies": {
        "product_types": (
            "dog leash", "cat litter", "pet carrier", "dog treats",
            "scratching post", "aquarium filter", "pet grooming brush",
            "dog bed", "cat toys", "poop bags", "bird cage", "flea collar",
        ),
        "functions": (
            "walk the dog", "keep claws off the couch", "remove loose fur",
            "keep the tank water clear",
        ),
        "activities": (
            "daily dog walks", "vet visits", "weekend trips with pets",
            "training a puppy",
        ),
        "audiences": ("dog owners", "cat owners", "aquarium hobbyists"),
        "locations": ("dog park", "living room"),
        "times": ("every morning", "shedding season"),
        "body_parts": (),
        "interests": ("pet training",),
        "complements": ("leash clip", "litter scoop", "brush refills"),
    },
    "Others": {
        "product_types": (
            "fitness tracker", "luggage tag", "travel pillow", "umbrella",
            "key organizer", "reusable bags", "book light", "picnic blanket",
            "car phone mount", "gift wrap", "water flosser", "door mat",
        ),
        "functions": (
            "track calories burned", "keep keys organized", "read at night",
            "stay dry in the rain",
        ),
        "activities": (
            "international travel", "daily commute", "picnics in the park",
            "gift wrapping",
        ),
        "audiences": ("frequent travelers", "commuters", "book lovers"),
        "locations": ("airport", "park"),
        "times": ("rainy season", "holiday season"),
        "body_parts": ("neck", "teeth"),
        "interests": ("travel", "reading"),
        "complements": ("tracker band", "pillow cover", "bag clips"),
    },
}
