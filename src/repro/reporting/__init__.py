"""Paper-shaped table rendering for the benchmark harness."""

from repro.reporting.tables import Table, format_float, format_percent

__all__ = ["Table", "format_float", "format_percent"]
