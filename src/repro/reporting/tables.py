"""Fixed-width table renderer.

Every benchmark prints its results in the layout of the paper table it
reproduces; this module does the column sizing and alignment.
"""

from __future__ import annotations

__all__ = ["Table", "format_float", "format_percent"]


def format_float(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def format_percent(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"


class Table:
    """A titled fixed-width text table."""

    def __init__(self, title: str, columns: list[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def add_separator(self) -> None:
        self.rows.append(["---"] * len(self.columns))

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: list[str]) -> str:
            return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

        separator = "-+-".join("-" * width for width in widths)
        out = [self.title, "=" * max(len(self.title), 8), line(self.columns), separator]
        for row in self.rows:
            if row[0] == "---":
                out.append(separator)
            else:
                out.append(line(row))
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
