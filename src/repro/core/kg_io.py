"""Knowledge-graph persistence: JSON Lines serialization.

The production system materializes the KG for downstream consumers; this
module provides the equivalent dump/load so a built graph can be shipped
without re-running the pipeline.  One JSON object per line keeps files
streamable and diff-friendly at millions of edges.
"""

from __future__ import annotations

import json
import pathlib

from repro.core.kg import KnowledgeGraph
from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple

__all__ = ["save_kg", "load_kg", "triple_to_record", "record_to_triple"]

_FORMAT_VERSION = 1


def triple_to_record(triple: KnowledgeTriple) -> dict:
    """A JSON-serializable record for one triple."""
    return {
        "head": triple.head,
        "relation": triple.relation.value,
        "tail": triple.tail,
        "domain": triple.domain,
        "behavior": triple.behavior,
        "plausibility": round(triple.plausibility, 6),
        "typicality": round(triple.typicality, 6),
        "support": triple.support,
        "head_ids": list(triple.head_ids),
    }


def record_to_triple(record: dict) -> KnowledgeTriple:
    """Inverse of :func:`triple_to_record` (validates the relation)."""
    return KnowledgeTriple(
        head=record["head"],
        relation=Relation(record["relation"]),
        tail=record["tail"],
        domain=record["domain"],
        behavior=record["behavior"],
        plausibility=float(record["plausibility"]),
        typicality=float(record["typicality"]),
        support=int(record.get("support", 1)),
        head_ids=tuple(record.get("head_ids", ())),
    )


def save_kg(kg: KnowledgeGraph, path: str | pathlib.Path) -> int:
    """Write the KG as JSON Lines; returns the number of edges written.

    The first line is a header with the format version and edge count so
    loaders can validate before streaming.
    """
    path = pathlib.Path(path)
    triples = kg.triples()
    with path.open("w", encoding="utf-8") as handle:
        header = {"format": "cosmo-kg", "version": _FORMAT_VERSION, "edges": len(triples)}
        handle.write(json.dumps(header) + "\n")
        for triple in triples:
            handle.write(json.dumps(triple_to_record(triple)) + "\n")
    return len(triples)


def load_kg(path: str | pathlib.Path) -> KnowledgeGraph:
    """Load a KG previously written by :func:`save_kg`."""
    path = pathlib.Path(path)
    kg = KnowledgeGraph()
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty KG file")
        header = json.loads(header_line)
        if header.get("format") != "cosmo-kg":
            raise ValueError(f"{path}: not a cosmo-kg file")
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported version {header.get('version')} "
                f"(expected {_FORMAT_VERSION})"
            )
        expected = header.get("edges")
        count = 0
        for line in handle:
            if not line.strip():
                continue
            kg.add(record_to_triple(json.loads(line)))
            count += 1
    if expected is not None and count != expected:
        raise ValueError(f"{path}: header promises {expected} edges, found {count}")
    return kg
