"""Knowledge-graph persistence: JSON Lines and columnar serialization.

The production system materializes the KG for downstream consumers; this
module provides the equivalent dump/load so a built graph can be shipped
without re-running the pipeline.  Two formats:

* **JSON Lines** (:func:`save_kg` / :func:`load_kg`) — one JSON object
  per line, streamable and diff-friendly; the interchange format.
* **Columnar npz** (:func:`save_kg_columnar` / :func:`load_kg_columnar`)
  — the graph's columnar form (id columns + intern tables) written
  directly, no per-edge JSON traffic; loading reconstructs the columns
  wholesale instead of re-interning edge by edge.  The hot-path format
  for snapshots and large graphs.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.kg import KnowledgeGraph
from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple

__all__ = [
    "save_kg",
    "load_kg",
    "save_kg_columnar",
    "load_kg_columnar",
    "triple_to_record",
    "record_to_triple",
]

_FORMAT_VERSION = 1
_COLUMNAR_FORMAT = "cosmo-kg-columnar"
_COLUMNAR_VERSION = 1
_NUMERIC_COLUMNS = ("head", "relation", "tail", "domain", "behavior",
                    "plausibility", "typicality", "support")
_TABLE_COLUMNS = ("nodes", "relations", "domains", "behaviors")


def triple_to_record(triple: KnowledgeTriple) -> dict:
    """A JSON-serializable record for one triple."""
    return {
        "head": triple.head,
        "relation": triple.relation.value,
        "tail": triple.tail,
        "domain": triple.domain,
        "behavior": triple.behavior,
        "plausibility": round(triple.plausibility, 6),
        "typicality": round(triple.typicality, 6),
        "support": triple.support,
        "head_ids": list(triple.head_ids),
    }


def record_to_triple(record: dict) -> KnowledgeTriple:
    """Inverse of :func:`triple_to_record` (validates the relation)."""
    return KnowledgeTriple(
        head=record["head"],
        relation=Relation(record["relation"]),
        tail=record["tail"],
        domain=record["domain"],
        behavior=record["behavior"],
        plausibility=float(record["plausibility"]),
        typicality=float(record["typicality"]),
        support=int(record.get("support", 1)),
        head_ids=tuple(record.get("head_ids", ())),
    )


def save_kg(kg: KnowledgeGraph, path: str | pathlib.Path) -> int:
    """Write the KG as JSON Lines; returns the number of edges written.

    The first line is a header with the format version and edge count so
    loaders can validate before streaming.
    """
    path = pathlib.Path(path)
    triples = kg.triples()
    with path.open("w", encoding="utf-8") as handle:
        header = {"format": "cosmo-kg", "version": _FORMAT_VERSION, "edges": len(triples)}
        handle.write(json.dumps(header) + "\n")
        for triple in triples:
            handle.write(json.dumps(triple_to_record(triple)) + "\n")
    return len(triples)


def load_kg(path: str | pathlib.Path) -> KnowledgeGraph:
    """Load a KG previously written by :func:`save_kg`."""
    path = pathlib.Path(path)
    kg = KnowledgeGraph()
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty KG file")
        header = json.loads(header_line)
        if header.get("format") != "cosmo-kg":
            raise ValueError(f"{path}: not a cosmo-kg file")
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported version {header.get('version')} "
                f"(expected {_FORMAT_VERSION})"
            )
        expected = header.get("edges")
        count = 0
        for line in handle:
            if not line.strip():
                continue
            kg.add(record_to_triple(json.loads(line)))
            count += 1
    if expected is not None and count != expected:
        raise ValueError(f"{path}: header promises {expected} edges, found {count}")
    return kg


def save_kg_columnar(kg: KnowledgeGraph, path: str | pathlib.Path) -> int:
    """Write the KG's columnar form as a compressed npz archive.

    The numeric columns are stored as-is; the intern tables as unicode
    arrays; the ragged per-edge provenance (``head_ids``) as a flat
    value array plus per-edge lengths.  Returns the edge count.
    """
    path = pathlib.Path(path)
    cols = kg.columns()
    head_ids = cols["head_ids"]
    lengths = np.array([len(ids) for ids in head_ids], dtype=np.int32)
    flat = [value for ids in head_ids for value in ids]
    payload = {name: cols[name] for name in _NUMERIC_COLUMNS}
    payload.update({
        name: np.array(cols[name], dtype=np.str_) for name in _TABLE_COLUMNS
    })
    payload["head_ids_len"] = lengths
    payload["head_ids_flat"] = np.array(flat, dtype=np.str_)
    payload["format"] = np.array(_COLUMNAR_FORMAT)
    payload["version"] = np.array(_COLUMNAR_VERSION, dtype=np.int64)
    with path.open("wb") as handle:
        np.savez_compressed(handle, **payload)
    return len(kg)


def _check_columnar(path: pathlib.Path, columns: dict, tables: dict,
                    lengths: np.ndarray, n_flat: int) -> None:
    """Validate a columnar archive's internal consistency before replay.

    A truncated or hand-edited archive must fail with a ``ValueError``
    naming the inconsistency, never with a numpy ``IndexError`` halfway
    through reconstruction: every numeric column must be one value per
    edge, the ragged ``head_ids`` lengths must be non-negative, one per
    edge and sum to the flat value count, and every intern id must
    resolve inside its stored table.
    """
    edges = len(columns["head"])
    for name in _NUMERIC_COLUMNS:
        if len(columns[name]) != edges:
            raise ValueError(
                f"{path}: column {name!r} has {len(columns[name])} values "
                f"for {edges} edges"
            )
    if len(lengths) != edges:
        raise ValueError(
            f"{path}: head_ids_len has {len(lengths)} entries for "
            f"{edges} edges"
        )
    if len(lengths) and int(np.min(lengths)) < 0:
        raise ValueError(f"{path}: head_ids_len contains negative lengths")
    if int(np.sum(lengths)) != n_flat:
        raise ValueError(f"{path}: head_ids lengths disagree with flat values")
    bounds = {"head": "nodes", "tail": "nodes", "relation": "relations",
              "domain": "domains", "behavior": "behaviors"}
    for name, table in bounds.items():
        ids = columns[name]
        if len(ids) and (int(np.min(ids)) < 0
                         or int(np.max(ids)) >= len(tables[table])):
            raise ValueError(
                f"{path}: column {name!r} has ids outside the "
                f"{table!r} table (size {len(tables[table])})"
            )


def load_kg_columnar(path: str | pathlib.Path) -> KnowledgeGraph:
    """Load a KG previously written by :func:`save_kg_columnar`.

    Edges are replayed through :meth:`KnowledgeGraph.add` in row order
    — identical merge/stats bookkeeping, one code path to trust — with
    strings resolved through the stored intern tables.  The archive is
    validated wholesale first (:func:`_check_columnar`), so a truncated
    or inconsistent file fails loudly before any edge is built.
    """
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if "format" not in archive or str(archive["format"]) != _COLUMNAR_FORMAT:
            raise ValueError(f"{path}: not a {_COLUMNAR_FORMAT} file")
        if int(archive["version"]) != _COLUMNAR_VERSION:
            raise ValueError(
                f"{path}: unsupported columnar version {int(archive['version'])} "
                f"(expected {_COLUMNAR_VERSION})"
            )
        missing = [name for name in
                   _NUMERIC_COLUMNS + _TABLE_COLUMNS
                   + ("head_ids_len", "head_ids_flat")
                   if name not in archive]
        if missing:
            raise ValueError(f"{path}: archive is missing columns {missing}")
        columns = {name: archive[name] for name in _NUMERIC_COLUMNS}
        tables = {name: [str(value) for value in archive[name]]
                  for name in _TABLE_COLUMNS}
        lengths = archive["head_ids_len"]
        flat = [str(value) for value in archive["head_ids_flat"]]
    _check_columnar(path, columns, tables, lengths, len(flat))
    kg = KnowledgeGraph()
    cursor = 0
    for row in range(len(columns["head"])):
        count = int(lengths[row])
        head_ids = tuple(flat[cursor:cursor + count])
        cursor += count
        kg.add(KnowledgeTriple(
            head=tables["nodes"][int(columns["head"][row])],
            relation=Relation(tables["relations"][int(columns["relation"][row])]),
            tail=tables["nodes"][int(columns["tail"][row])],
            domain=tables["domains"][int(columns["domain"][row])],
            behavior=tables["behaviors"][int(columns["behavior"][row])],
            plausibility=float(columns["plausibility"][row]),
            typicality=float(columns["typicality"][row]),
            support=int(columns["support"][row]),
            head_ids=head_ids,
        ))
    return kg
