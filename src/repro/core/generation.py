"""Knowledge-candidate harvesting from the teacher LLM (§3.2.2).

Builds the QA prompt for each sampled behavior, asks the teacher for a
handful of continuations, and parses each into a (relation, tail) via the
predicate templates.  Unparseable generations are kept as candidates with
``relation=None`` so the refinement stage can count (and drop) them.
"""

from __future__ import annotations

import numpy as np

from repro.behavior.world import World
from repro.core.prompts import BehaviorPrompt, cobuy_prompt, searchbuy_prompt
from repro.core.relations import SEED_RELATIONS, parse_predicate
from repro.core.triples import BehaviorSample, KnowledgeCandidate
from repro.llm.teacher import TeacherLLM
from repro.utils.rng import spawn_rng

__all__ = ["build_prompt", "generate_candidates"]


def build_prompt(
    world: World,
    sample: BehaviorSample,
    seed_relation: str | None = None,
) -> BehaviorPrompt:
    """Render the Figure 3 QA prompt for one behavior sample."""
    if sample.behavior == "co-buy":
        product_a = world.catalog.get(sample.product_ids[0])
        product_b = world.catalog.get(sample.product_ids[1])
        return cobuy_prompt(
            product_a.title,
            product_b.title,
            sample.domain,
            (product_a.product_id, product_b.product_id),
            seed_relation=seed_relation,
            intent_id=sample.intent_id,
        )
    query = world.queries.get(sample.query_id)
    product = world.catalog.get(sample.product_ids[0])
    return searchbuy_prompt(
        query.text,
        product.title,
        sample.domain,
        product.product_id,
        query.query_id,
        seed_relation=seed_relation,
        intent_id=sample.intent_id,
    )


def generate_candidates(
    world: World,
    teacher: TeacherLLM,
    samples: list[BehaviorSample],
    candidates_per_sample: int = 3,
    rotate_seed_relations: bool = True,
    seed: int = 0,
) -> list[KnowledgeCandidate]:
    """Harvest raw knowledge candidates for every behavior sample.

    ``rotate_seed_relations`` cycles the four seed relations across
    samples (the paper prompts with each to diversify generations).
    """
    rng = spawn_rng(seed, "generation")
    candidates: list[KnowledgeCandidate] = []
    for index, sample in enumerate(samples):
        seed_relation = (
            SEED_RELATIONS[index % len(SEED_RELATIONS)] if rotate_seed_relations else None
        )
        prompt = build_prompt(world, sample, seed_relation=seed_relation)
        for gen_index, generation in enumerate(
            teacher.generate_for(prompt, num_candidates=candidates_per_sample)
        ):
            parsed = parse_predicate(generation.text)
            relation, tail = parsed if parsed else (None, None)
            candidates.append(
                KnowledgeCandidate(
                    candidate_id=f"kc-{sample.sample_id}-{gen_index}",
                    sample=sample,
                    text=generation.text,
                    relation=relation,
                    tail=tail,
                    truth=generation.truth,
                )
            )
    rng.shuffle(candidates)
    return candidates
