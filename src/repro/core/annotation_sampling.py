"""Annotation-budget sampling with Eq. 2 re-weighting (§3.3.2).

Uniform sampling over-represents head knowledge attached to popular
products and starves the long tail.  The paper re-weights each candidate
by ``w = log(f(t)) / (pop(q) × pop(p))``: frequent *knowledge* is worth
confirming, but knowledge hanging off very *popular heads* is likely
already common.  Popularity is the head's degree in the query-product
interaction graph (search-buy) or the co-buy graph (co-buy).
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.behavior.cobuy import CoBuyLog
from repro.behavior.searchbuy import SearchBuyLog
from repro.core.triples import KnowledgeCandidate
from repro.utils.rng import spawn_rng

__all__ = ["reweight_candidates", "sample_for_annotation"]


def _tail_frequencies(candidates: list[KnowledgeCandidate]) -> Counter:
    counts: Counter[str] = Counter()
    for candidate in candidates:
        if candidate.tail is not None:
            counts[candidate.tail] += 1
    return counts


def reweight_candidates(
    candidates: list[KnowledgeCandidate],
    cobuy: CoBuyLog,
    searchbuy: SearchBuyLog,
) -> np.ndarray:
    """Eq. 2 weights, aligned with ``candidates``."""
    frequencies = _tail_frequencies(candidates)
    weights = np.zeros(len(candidates))
    for index, candidate in enumerate(candidates):
        tail = candidate.tail or candidate.text
        # log(f(t)) with the +1 shift so singleton knowledge stays sampleable.
        log_freq = math.log(frequencies.get(tail, 1) + 1.0)
        sample = candidate.sample
        if sample.behavior == "co-buy":
            pop_a = cobuy.degree(sample.product_ids[0]) + 1.0
            pop_b = cobuy.degree(sample.product_ids[1]) + 1.0
            popularity = pop_a * pop_b
        else:
            clicks, _ = searchbuy.query_engagement(sample.query_id)
            pop_q = clicks + 1.0
            pop_p = searchbuy.product_degree(sample.product_ids[0]) + 1.0
            popularity = pop_q * pop_p
        weights[index] = log_freq / popularity
    return weights


def sample_for_annotation(
    candidates: list[KnowledgeCandidate],
    cobuy: CoBuyLog,
    searchbuy: SearchBuyLog,
    budget: int,
    uniform: bool = False,
    seed: int = 0,
) -> list[KnowledgeCandidate]:
    """Draw ``budget`` candidates for annotation (without replacement).

    ``uniform=True`` disables the Eq. 2 re-weighting — the ablation the
    paper argues against.
    """
    if budget >= len(candidates):
        return list(candidates)
    rng = spawn_rng(seed, "annotation-sampling")
    if uniform:
        probabilities = np.full(len(candidates), 1.0 / len(candidates))
    else:
        weights = reweight_candidates(candidates, cobuy, searchbuy)
        total = weights.sum()
        if total <= 0:
            probabilities = np.full(len(candidates), 1.0 / len(candidates))
        else:
            probabilities = weights / total
    chosen = rng.choice(len(candidates), size=budget, replace=False, p=probabilities)
    return [candidates[int(i)] for i in chosen]
