"""Knowledge data model: candidates (pre-refinement) and triples (KG edges)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.relations import Relation
from repro.llm.interface import GenerationTruth

__all__ = ["BehaviorSample", "KnowledgeCandidate", "KnowledgeTriple"]


@dataclass(frozen=True)
class BehaviorSample:
    """One sampled user behavior selected for knowledge generation (§3.2.1).

    For co-buy: ``product_ids`` has two entries and ``query_id`` is None.
    For search-buy: one product and the query.  ``intent_id`` is simulator
    ground truth carried for the oracle; the pipeline never branches on it.
    """

    sample_id: str
    behavior: str  # "co-buy" | "search-buy"
    domain: str
    product_ids: tuple[str, ...]
    query_id: str | None
    head_text: str
    intent_id: str | None
    weight: float = 1.0


@dataclass
class KnowledgeCandidate:
    """A raw LLM generation attached to its behavior, before refinement."""

    candidate_id: str
    sample: BehaviorSample
    text: str
    relation: Relation | None = None
    tail: str | None = None
    truth: GenerationTruth | None = None
    # Populated by the critic stage.
    plausibility_score: float | None = None
    typicality_score: float | None = None

    @property
    def parsed(self) -> bool:
        return self.relation is not None and self.tail is not None


@dataclass(frozen=True)
class KnowledgeTriple:
    """A refined KG edge ``(head, relation, tail)`` (§3.1).

    ``head`` is the behavior's surface form (query text, or the joined
    co-buy titles); ``support`` counts how many candidates collapsed into
    this edge.
    """

    head: str
    relation: Relation
    tail: str
    domain: str
    behavior: str
    plausibility: float
    typicality: float
    support: int = 1
    head_ids: tuple[str, ...] = field(default=(), hash=False)

    @property
    def key(self) -> tuple[str, str, str]:
        """Identity for deduplication."""
        return (self.head, self.relation.value, self.tail)
