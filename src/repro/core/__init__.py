"""The COSMO core: relations, sampling, generation, refinement,
annotation sampling, critics, instruction tuning, KG assembly, and the
end-to-end pipeline (paper §3).

Exports are resolved lazily (PEP 562): leaf modules such as
``core.relations`` are imported by the catalog/behavior substrates, so an
eager ``__init__`` here would create an import cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "Relation": "repro.core.relations",
    "TailType": "repro.core.relations",
    "RELATION_SPECS": "repro.core.relations",
    "SEED_RELATIONS": "repro.core.relations",
    "parse_predicate": "repro.core.relations",
    "relations_for_tail_type": "repro.core.relations",
    "verbalize": "repro.core.relations",
    "BehaviorSample": "repro.core.triples",
    "KnowledgeCandidate": "repro.core.triples",
    "KnowledgeTriple": "repro.core.triples",
    "BehaviorPrompt": "repro.core.prompts",
    "cobuy_prompt": "repro.core.prompts",
    "searchbuy_prompt": "repro.core.prompts",
    "SamplingConfig": "repro.core.sampling",
    "sample_products": "repro.core.sampling",
    "sample_cobuy": "repro.core.sampling",
    "sample_searchbuy": "repro.core.sampling",
    "build_prompt": "repro.core.generation",
    "generate_candidates": "repro.core.generation",
    "FilterConfig": "repro.core.filtering",
    "FilterReport": "repro.core.filtering",
    "KnowledgeFilter": "repro.core.filtering",
    "build_reference_lm": "repro.core.filtering",
    "reweight_candidates": "repro.core.annotation_sampling",
    "sample_for_annotation": "repro.core.annotation_sampling",
    "CriticClassifier": "repro.core.critic",
    "CriticConfig": "repro.core.critic",
    "InstructionExample": "repro.core.instructions",
    "InstructionDataset": "repro.core.instructions",
    "build_instruction_dataset": "repro.core.instructions",
    "CosmoLM": "repro.core.cosmo_lm",
    "CosmoLMConfig": "repro.core.cosmo_lm",
    "KnowledgeQuality": "repro.core.cosmo_lm",
    "RelationDiscovery": "repro.core.relation_discovery",
    "DiscoveredRelation": "repro.core.relation_discovery",
    "KnowledgeGraph": "repro.core.kg",
    "KGStats": "repro.core.kg",
    "HierarchyNode": "repro.core.kg",
    "CosmoPipeline": "repro.core.pipeline",
    "FolkScopeConfig": "repro.core.folkscope",
    "FolkScopeResult": "repro.core.folkscope",
    "FolkScopePipeline": "repro.core.folkscope",
    "save_kg": "repro.core.kg_io",
    "load_kg": "repro.core.kg_io",
    "save_kg_columnar": "repro.core.kg_io",
    "load_kg_columnar": "repro.core.kg_io",
    "PipelineConfig": "repro.core.pipeline",
    "PipelineResult": "repro.core.pipeline",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
