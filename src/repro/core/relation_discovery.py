"""Data-driven relation discovery (§3.1).

The paper cannot align millions of generations to ConceptNet relations,
so it mines frequent *predicate patterns* from generations produced under
four seed relations, then canonicalizes (pattern, tail type) combinations
into the Table 2 taxonomy — e.g. the pattern "the product is capable of
being used [Prep]" splits into different relations by preposition and
tail type.  This module reproduces that mining over candidate texts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.domains import all_domains
from repro.core.relations import Relation, TailType
from repro.core.triples import KnowledgeCandidate

__all__ = ["DiscoveredRelation", "RelationDiscovery"]

# Surface predicate patterns to mine, longest first.  Each maps to the
# canonical relation *family*; the final relation is disambiguated by the
# tail's lexical type.
_PATTERNS: tuple[tuple[str, str], ...] = (
    ("is interested in", "interest"),
    ("wants to", "want"),
    ("is one of", "is_person"),
    ("is capable of", "capable"),
    ("is a type of", "isa"),
    ("is designed for", "used_for_aud"),
    ("can be used when they", "used_for_eve"),
    ("is used during", "used_on"),
    ("is used in the", "used_in_loc"),
    ("is used with", "used_with"),
    ("is used for", "used_for"),
    ("is used as", "used_as"),
    ("is used by", "used_by"),
    ("is used on", "used_in_body"),
    ("is used to", "used_to"),
)

# (pattern family, tail type) → canonical relation.
_CANONICAL: dict[tuple[str, TailType | None], Relation] = {
    ("interest", None): Relation.X_INTERESTED_IN,
    ("want", None): Relation.X_WANT,
    ("is_person", None): Relation.X_IS_A,
    ("capable", None): Relation.CAPABLE_OF,
    ("isa", None): Relation.IS_A,
    ("used_for_aud", None): Relation.USED_FOR_AUD,
    ("used_for_eve", None): Relation.USED_FOR_EVE,
    ("used_on", None): Relation.USED_ON,
    ("used_in_loc", None): Relation.USED_IN_LOC,
    ("used_with", None): Relation.USED_WITH,
    ("used_as", None): Relation.USED_AS,
    ("used_by", None): Relation.USED_BY,
    ("used_in_body", None): Relation.USED_IN_BODY,
    ("used_to", None): Relation.USED_TO,
    # "used for" splits by tail type — the paper's canonicalization step.
    ("used_for", TailType.FUNCTION): Relation.USED_FOR_FUNC,
    ("used_for", TailType.ACTIVITY): Relation.USED_FOR_EVE,
    ("used_for", TailType.AUDIENCE): Relation.USED_FOR_AUD,
    ("used_for", None): Relation.USED_FOR_FUNC,
}


@dataclass
class DiscoveredRelation:
    """One mined relation with evidence."""

    relation: Relation
    tail_type: TailType | None
    pattern: str
    count: int = 0
    examples: list[str] = field(default_factory=list)


class RelationDiscovery:
    """Mines predicate patterns and canonicalizes them into relations."""

    def __init__(self, min_count: int = 2, max_examples: int = 3):
        self.min_count = min_count
        self.max_examples = max_examples
        self._tail_lexicon = self._build_tail_lexicon()

    @staticmethod
    def _build_tail_lexicon() -> dict[str, TailType]:
        """Phrase → tail type, from the domain lexicons (stand-in for the
        paper's manual tail canonicalization)."""
        lexicon: dict[str, TailType] = {}
        for domain in all_domains():
            for tail_type in TailType:
                for phrase in domain.tail_phrases(tail_type):
                    lexicon.setdefault(phrase.lower(), tail_type)
        return lexicon

    def _tail_type_of(self, tail: str) -> TailType | None:
        lowered = tail.lower().strip()
        if lowered in self._tail_lexicon:
            return self._tail_lexicon[lowered]
        # Strip a leading modifier word ("winter camping" → "camping").
        parts = lowered.split(" ", 1)
        if len(parts) == 2 and parts[1] in self._tail_lexicon:
            return self._tail_lexicon[parts[1]]
        return None

    def mine(self, texts: list[str]) -> list[DiscoveredRelation]:
        """Discover relations from raw generation texts.

        Returns relations ordered by support, each with its predicate
        pattern, inferred tail type and example tails — the content of
        Table 2.
        """
        found: dict[tuple[Relation, str], DiscoveredRelation] = {}
        for text in texts:
            cleaned = text.strip().rstrip(".").lower()
            for pattern, family in _PATTERNS:
                position = cleaned.find(pattern)
                if position < 0:
                    continue
                tail = cleaned[position + len(pattern):].strip()
                if not tail:
                    break
                tail_type = self._tail_type_of(tail)
                relation = _CANONICAL.get((family, tail_type), _CANONICAL[(family, None)])
                key = (relation, pattern)
                record = found.get(key)
                if record is None:
                    record = DiscoveredRelation(
                        relation=relation, tail_type=tail_type, pattern=pattern
                    )
                    found[key] = record
                record.count += 1
                if tail_type is not None and record.tail_type is None:
                    record.tail_type = tail_type
                if len(record.examples) < self.max_examples and tail not in record.examples:
                    record.examples.append(tail)
                break  # longest pattern wins; stop scanning
        mined = [r for r in found.values() if r.count >= self.min_count]
        return sorted(mined, key=lambda r: -r.count)

    def mine_candidates(self, candidates: list[KnowledgeCandidate]) -> list[DiscoveredRelation]:
        """Convenience wrapper over candidate objects."""
        return self.mine([c.text for c in candidates])
