"""Representative user-behavior sampling (§3.2.1).

Millions of raw behaviors are noisy; this stage selects the pairs worth
spending LLM generation on:

* **product sampling** — top-tier products by interaction volume, spread
  across product types;
* **co-buy pair sampling** — at least one endpoint in the selected set,
  deduplicated at the product-type-pair level, with the heuristic that a
  type pair seen only once is likely a random co-purchase;
* **search-buy pair sampling** — engagement (click / purchase-rate)
  thresholds plus the query-specificity service: *broad* queries are
  preferred because bridging their semantic gap is where knowledge has
  most value, with a slice of low-engagement queries kept to probe the
  LLM directly.
"""

from __future__ import annotations

from collections import Counter

from repro.behavior.cobuy import CoBuyLog
from repro.behavior.searchbuy import SearchBuyLog
from repro.behavior.world import World
from repro.core.triples import BehaviorSample

__all__ = ["SamplingConfig", "sample_products", "sample_cobuy", "sample_searchbuy"]


from dataclasses import dataclass


@dataclass(frozen=True)
class SamplingConfig:
    """Thresholds for behavior-pair selection."""

    top_product_fraction: float = 0.6
    min_type_pair_count: int = 2
    min_clicks: int = 2
    min_purchase_rate: float = 0.2
    broad_specificity_max: float = 0.51
    low_engagement_fraction: float = 0.15


def sample_products(
    world: World,
    cobuy: CoBuyLog,
    searchbuy: SearchBuyLog,
    top_fraction: float = 0.6,
) -> set[str]:
    """Select top-tier products by total interaction volume, per domain."""
    selected: set[str] = set()
    for domain in {p.domain for p in world.catalog.all()}:
        products = world.catalog.for_domain(domain)
        scored = sorted(
            products,
            key=lambda p: cobuy.degree(p.product_id) + searchbuy.product_degree(p.product_id),
            reverse=True,
        )
        keep = max(1, int(len(scored) * top_fraction))
        selected.update(p.product_id for p in scored[:keep])
    return selected


def sample_cobuy(
    world: World,
    cobuy: CoBuyLog,
    selected_products: set[str],
    config: SamplingConfig | None = None,
) -> list[BehaviorSample]:
    """Filter and deduplicate co-buy pairs into behavior samples."""
    config = config or SamplingConfig()
    # Type-pair frequency: singleton type pairs are treated as random
    # co-purchases (the paper's cross-check heuristic).
    type_pair_counts: Counter[tuple[str, str]] = Counter()
    for pair in cobuy.pairs:
        type_a = world.catalog.get(pair.product_a).product_type
        type_b = world.catalog.get(pair.product_b).product_type
        type_pair_counts[tuple(sorted((type_a, type_b)))] += 1

    samples: list[BehaviorSample] = []
    seen_type_pairs: set[tuple[str, str]] = set()
    for pair in cobuy.pairs:
        if pair.product_a not in selected_products and pair.product_b not in selected_products:
            continue
        product_a = world.catalog.get(pair.product_a)
        product_b = world.catalog.get(pair.product_b)
        if product_a.product_type == product_b.product_type:
            continue  # same-type pairs carry no cross-product intent
        type_key = tuple(sorted((product_a.product_type, product_b.product_type)))
        if type_pair_counts[type_key] < config.min_type_pair_count:
            continue  # likely a random co-purchase
        dedupe_key = (type_key, pair.product_a, pair.product_b)
        if dedupe_key in seen_type_pairs:
            continue
        seen_type_pairs.add(dedupe_key)
        samples.append(
            BehaviorSample(
                sample_id=f"bs-{pair.pair_id}",
                behavior="co-buy",
                domain=pair.domain,
                product_ids=(pair.product_a, pair.product_b),
                query_id=None,
                head_text=f"{product_a.title} ||| {product_b.title}",
                intent_id=pair.intent_id,
                weight=float(pair.count),
            )
        )
    return samples


def sample_searchbuy(
    world: World,
    searchbuy: SearchBuyLog,
    config: SamplingConfig | None = None,
) -> list[BehaviorSample]:
    """Select search-buy pairs via engagement and specificity thresholds."""
    config = config or SamplingConfig()
    samples: list[BehaviorSample] = []
    seen: set[tuple[str, str]] = set()
    low_engagement_budget = int(len(searchbuy.records) * config.low_engagement_fraction)
    for record in searchbuy.records:
        key = (record.query_id, record.product_id)
        if key in seen:
            continue
        query = world.queries.get(record.query_id)
        clicks, _ = searchbuy.query_engagement(record.query_id)
        engaged = (
            clicks >= config.min_clicks
            and searchbuy.purchase_rate(record.query_id) >= config.min_purchase_rate
        )
        broad_enough = world.specificity.score(query) <= config.broad_specificity_max
        if engaged and broad_enough:
            accepted = True
        elif not engaged and low_engagement_budget > 0:
            # Keep a slice of low-engagement queries: knowledge for them
            # must come from the LLM itself (§3.2.1).
            accepted = True
            low_engagement_budget -= 1
        else:
            accepted = False
        if not accepted:
            continue
        seen.add(key)
        product = world.catalog.get(record.product_id)
        samples.append(
            BehaviorSample(
                sample_id=f"bs-{record.record_id}",
                behavior="search-buy",
                domain=record.domain,
                product_ids=(record.product_id,),
                query_id=record.query_id,
                head_text=f"{query.text} ||| {product.title}",
                intent_id=record.intent_id,
                weight=float(record.purchases),
            )
        )
    return samples
