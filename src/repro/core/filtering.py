"""Knowledge refinement: coarse-grained + similarity filtering (§3.3.1).

Four stages, each reported separately so the filtering ablation bench can
toggle them:

1. **completeness** — unparseable generations, fragments without terminal
   punctuation, and high-perplexity sentences (n-gram LM, the GPT-2
   stand-in) are dropped;
2. **context-overlap** — tails that (near-)duplicate the query, product
   type or title (normalized edit distance / containment) are dropped —
   the "Apple watch is a watch" paraphrases;
3. **generic-tail** — tails co-occurring with many distinct heads at high
   head-entropy are generic ("used for the same reason") and dropped;
4. **similarity** — embedding-cosine between the tail and its behavior
   context above threshold means the tail is a syntactic transformation
   of the context (Eq. 1) and is dropped.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.relations import RELATION_SPECS
from repro.core.triples import KnowledgeCandidate
from repro.embeddings.encoder import TextEncoder
from repro.llm.ngram import NGramLanguageModel
from repro.utils.textproc import (
    entropy,
    normalized_edit_distance,
    sentence_split,
    tokenize_words,
)

__all__ = ["FilterConfig", "FilterReport", "KnowledgeFilter", "build_reference_lm"]


@dataclass(frozen=True)
class FilterConfig:
    """Thresholds for the four refinement stages."""

    max_perplexity: float = 60.0
    max_context_edit_similarity: float = 0.35  # min normalized edit distance
    generic_min_heads: int = 8
    generic_min_entropy: float = 1.8
    max_context_cosine: float = 0.85
    enable_completeness: bool = True
    enable_context_overlap: bool = True
    enable_generic: bool = True
    enable_similarity: bool = True


@dataclass
class FilterReport:
    """Per-stage drop accounting."""

    input_count: int = 0
    dropped: Counter = field(default_factory=Counter)
    kept: int = 0

    def drop(self, stage: str) -> None:
        self.dropped[stage] += 1

    @property
    def drop_rate(self) -> float:
        if self.input_count == 0:
            return 0.0
        return 1.0 - self.kept / self.input_count


def build_reference_lm(extra_sentences: list[str] | None = None) -> NGramLanguageModel:
    """Train the completeness LM on well-formed sentences.

    GPT-2 in the paper knows general English; our stand-in gets the
    equivalent prior by fitting on every relation template instantiated
    with the full domain vocabulary (all well-formed phrases of the
    world), plus any caller-provided clean sentences.  Truncated or
    scrambled candidates still score high perplexity because their
    *transitions* are unseen, which is the property the filter needs.
    """
    from repro.catalog.domains import all_domains

    corpus = [
        f"{spec.template.format(spec.example)}."
        for spec in RELATION_SPECS.values()
    ]
    for domain in all_domains():
        for spec in RELATION_SPECS.values():
            for phrase in domain.tail_phrases(spec.tail_type):
                corpus.append(f"{spec.template.format(phrase)}.")
    if extra_sentences:
        corpus.extend(extra_sentences)
    return NGramLanguageModel().fit(corpus)


class KnowledgeFilter:
    """Applies the §3.3.1 refinement cascade to knowledge candidates."""

    def __init__(
        self,
        encoder: TextEncoder,
        reference_lm: NGramLanguageModel | None = None,
        config: FilterConfig | None = None,
    ):
        self.encoder = encoder
        self.config = config or FilterConfig()
        self.reference_lm = reference_lm or build_reference_lm()

    # -- stage predicates ------------------------------------------------
    def _is_complete(self, candidate: KnowledgeCandidate) -> bool:
        if not candidate.parsed:
            return False
        sentences = sentence_split(candidate.text)
        if not sentences:
            return False
        first = sentences[0]
        if not first.endswith((".", "!", "?")):
            return False
        return self.reference_lm.perplexity(first) <= self.config.max_perplexity

    def _overlaps_context(self, candidate: KnowledgeCandidate) -> bool:
        """Paraphrase test: does the tail merely restate the *product*?

        Tails echoing the product title/type ("Apple watch is a type of
        watch") are paraphrases and dropped.  Tails overlapping the
        *query* are NOT dropped — restating the query's intent is exactly
        the knowledge that bridges the semantic gap; only a tail that is
        near-identical to the whole query counts as a paraphrase.
        """
        tail = (candidate.tail or "").lower()
        tail_tokens = set(tokenize_words(tail))
        parts = candidate.sample.head_text.split(" ||| ")
        if candidate.sample.behavior == "search-buy":
            query_parts, product_parts = parts[:1], parts[1:]
        else:
            query_parts, product_parts = [], parts
        for context in product_parts:
            if normalized_edit_distance(tail, context.lower()) < self.config.max_context_edit_similarity:
                return True
            if tail_tokens and tail_tokens <= set(tokenize_words(context)):
                return True
        for context in query_parts:
            if tail_tokens and tail_tokens == set(tokenize_words(context)):
                return True
        return False

    def _generic_tails(self, candidates: list[KnowledgeCandidate]) -> set[str]:
        """Tails whose head distribution is broad and high-entropy."""
        tail_heads: dict[str, Counter[str]] = {}
        for candidate in candidates:
            if candidate.tail is None:
                continue
            tail_heads.setdefault(candidate.tail, Counter())[candidate.sample.head_text] += 1
        generic: set[str] = set()
        for tail, heads in tail_heads.items():
            if (
                len(heads) >= self.config.generic_min_heads
                and entropy(heads.values()) >= self.config.generic_min_entropy
            ):
                generic.add(tail)
        return generic

    def _too_similar(self, candidate: KnowledgeCandidate) -> bool:
        tail = candidate.tail or ""
        for context in candidate.sample.head_text.split(" ||| "):
            if float(self.encoder.encode(tail) @ self.encoder.encode(context)) > self.config.max_context_cosine:
                return True
        return False

    # -- the cascade -------------------------------------------------------
    def apply(
        self, candidates: list[KnowledgeCandidate]
    ) -> tuple[list[KnowledgeCandidate], FilterReport]:
        """Run all enabled stages; returns (survivors, report)."""
        report = FilterReport(input_count=len(candidates))
        generic_tails = self._generic_tails(candidates) if self.config.enable_generic else set()
        survivors: list[KnowledgeCandidate] = []
        for candidate in candidates:
            if self.config.enable_completeness and not self._is_complete(candidate):
                report.drop("completeness")
                continue
            if self.config.enable_context_overlap and self._overlaps_context(candidate):
                report.drop("context_overlap")
                continue
            if self.config.enable_generic and candidate.tail in generic_tails:
                report.drop("generic")
                continue
            if self.config.enable_similarity and self._too_similar(candidate):
                report.drop("similarity")
                continue
            survivors.append(candidate)
        report.kept = len(survivors)
        return survivors, report
