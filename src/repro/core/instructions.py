"""Instruction-data construction (§3.4, Figure 4).

From the annotated candidates we build instruction data covering
**5 task types** across 18 domains and 15 relations:

1. ``generation``          — behavior → typical knowledge text (only
   candidates judged *typical* become demonstrations);
2. ``plausibility``        — behavior + knowledge → yes/no;
3. ``typicality``          — behavior + knowledge → yes/no;
4. ``copurchase``          — two products → would they be co-bought?
5. ``search_relevance``    — query + product → is the product relevant?

Each task has several verbalization templates ("search query:", "user
searched:", ...) so the finetuned model is robust to input format — the
paper's template-diversity trick.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.annotation.schema import AnnotationResult
from repro.behavior.world import World
from repro.core.triples import BehaviorSample, KnowledgeCandidate
from repro.utils.rng import spawn_rng

__all__ = ["InstructionExample", "InstructionDataset", "build_instruction_dataset"]

TASKS: tuple[str, ...] = (
    "generation", "plausibility", "typicality", "copurchase", "search_relevance",
)

# Input-prefix template variants per behavior side.
_QUERY_PREFIXES = ("search query:", "user searched:", "user input:")
_PRODUCT_PREFIXES = ("product:", "item:", "bought:")
_PAIR_PREFIXES = ("products bought together:", "co purchased items:")


@dataclass(frozen=True)
class InstructionExample:
    """One instruction-tuning record."""

    task: str
    prompt: str
    target: str
    domain: str
    relation: str | None


@dataclass
class InstructionDataset:
    """The assembled instruction corpus with coverage statistics."""

    examples: list[InstructionExample]

    def __len__(self) -> int:
        return len(self.examples)

    def pairs(self) -> list[tuple[str, str]]:
        """(prompt, target) pairs for LM finetuning."""
        return [(example.prompt, example.target) for example in self.examples]

    def for_task(self, task: str) -> list[InstructionExample]:
        return [example for example in self.examples if example.task == task]

    def coverage(self) -> dict[str, int]:
        """Figure 4 scale-up numbers: domains, relations, tasks, examples."""
        domains = {example.domain for example in self.examples}
        relations = {example.relation for example in self.examples if example.relation}
        tasks = {example.task for example in self.examples}
        return {
            "examples": len(self.examples),
            "domains": len(domains),
            "relations": len(relations),
            "tasks": len(tasks),
        }

    def task_distribution(self) -> Counter:
        return Counter(example.task for example in self.examples)


def _behavior_prompt(sample: BehaviorSample, world: World, rng: np.random.Generator,
                     task: str) -> str:
    """Compact instruction verbalization of one behavior.

    Generation prompts use the canonical behavior fields (query text and
    product types — what the feature store serves); the classification
    tasks keep the noisier full titles so the model stays robust to raw
    product text.
    """
    canonical = task == "generation"
    if sample.behavior == "search-buy":
        query = world.queries.get(sample.query_id)
        product = world.catalog.get(sample.product_ids[0])
        q_prefix = _QUERY_PREFIXES[int(rng.integers(len(_QUERY_PREFIXES)))]
        if canonical:
            return (
                f"domain: {sample.domain} {q_prefix} {query.text} "
                f"type: {product.product_type} task: {task}"
            )
        p_prefix = _PRODUCT_PREFIXES[int(rng.integers(len(_PRODUCT_PREFIXES)))]
        return (
            f"behavior: search buy domain: {sample.domain} "
            f"{q_prefix} {query.text} {p_prefix} {product.title} "
            f"type: {product.product_type} task: {task}"
        )
    product_a = world.catalog.get(sample.product_ids[0])
    product_b = world.catalog.get(sample.product_ids[1])
    if canonical:
        return (
            f"domain: {sample.domain} types: {product_a.product_type} "
            f"and {product_b.product_type} task: {task}"
        )
    pair_prefix = _PAIR_PREFIXES[int(rng.integers(len(_PAIR_PREFIXES)))]
    return (
        f"behavior: co buy domain: {sample.domain} "
        f"{pair_prefix} {product_a.title} and {product_b.title} "
        f"types: {product_a.product_type} and {product_b.product_type} task: {task}"
    )


def build_instruction_dataset(
    world: World,
    candidates: list[KnowledgeCandidate],
    annotations: list[AnnotationResult],
    negatives_per_positive: int = 1,
    generation_oversample: int = 4,
    seed: int = 0,
) -> InstructionDataset:
    """Convert annotated candidates into the 5-task instruction corpus.

    ``generation_oversample`` repeats each generation demonstration (with
    a fresh prefix template) so the small student does not drown the
    generation task under the more numerous yes/no tasks.
    """
    if len(candidates) != len(annotations):
        raise ValueError("candidates and annotations must align")
    rng = spawn_rng(seed, "instructions")
    examples: list[InstructionExample] = []

    for candidate, annotation in zip(candidates, annotations):
        relation_name = candidate.relation.value if candidate.relation else None
        # Task 1: generation — typical knowledge becomes a demonstration.
        if annotation.typical and candidate.parsed:
            for _ in range(generation_oversample):
                prompt = _behavior_prompt(candidate.sample, world, rng, "generation")
                examples.append(
                    InstructionExample(
                        task="generation",
                        prompt=prompt,
                        target=candidate.text.rstrip("."),
                        domain=candidate.sample.domain,
                        relation=relation_name,
                    )
                )
        # Tasks 2 & 3: label-prediction from every annotation.
        base = _behavior_prompt(candidate.sample, world, rng, "base")
        base = base.rsplit(" task: base", 1)[0]
        examples.append(
            InstructionExample(
                task="plausibility",
                prompt=f"{base} knowledge: {candidate.text.rstrip('.')} task: plausibility",
                target="yes" if annotation.plausible else "no",
                domain=candidate.sample.domain,
                relation=relation_name,
            )
        )
        examples.append(
            InstructionExample(
                task="typicality",
                prompt=f"{base} knowledge: {candidate.text.rstrip('.')} task: typicality",
                target="yes" if annotation.typical else "no",
                domain=candidate.sample.domain,
                relation=relation_name,
            )
        )

    # Tasks 4 & 5: behavior-level prediction built from the annotated
    # samples plus sampled negatives (§3.4: annotations identified the
    # irrelevant / random pairs).
    samples = [candidate.sample for candidate in candidates]
    examples.extend(_copurchase_examples(world, samples, negatives_per_positive, rng))
    examples.extend(_relevance_examples(world, samples, negatives_per_positive, rng))
    return InstructionDataset(examples=examples)


def _copurchase_examples(world, samples, negatives_per_positive, rng):
    cobuy_samples = [s for s in samples if s.behavior == "co-buy"]
    out: list[InstructionExample] = []
    all_products = world.catalog.all()
    for sample in cobuy_samples:
        product_a = world.catalog.get(sample.product_ids[0])
        product_b = world.catalog.get(sample.product_ids[1])
        label = "yes" if sample.intent_id is not None else "no"
        out.append(
            InstructionExample(
                task="copurchase",
                prompt=(f"domain: {sample.domain} products: {product_a.title} "
                        f"and {product_b.title} task: copurchase"),
                target=label,
                domain=sample.domain,
                relation=None,
            )
        )
        for _ in range(negatives_per_positive):
            other = all_products[int(rng.integers(len(all_products)))]
            if other.product_id in sample.product_ids:
                continue
            out.append(
                InstructionExample(
                    task="copurchase",
                    prompt=(f"domain: {sample.domain} products: {product_a.title} "
                            f"and {other.title} task: copurchase"),
                    target="no" if other.domain != sample.domain else "yes"
                    if set(product_a.intent_ids) & set(other.intent_ids) else "no",
                    domain=sample.domain,
                    relation=None,
                )
            )
    return out


def _relevance_examples(world, samples, negatives_per_positive, rng):
    search_samples = [s for s in samples if s.behavior == "search-buy"]
    out: list[InstructionExample] = []
    all_products = world.catalog.all()
    for sample in search_samples:
        query = world.queries.get(sample.query_id)
        product = world.catalog.get(sample.product_ids[0])
        label = "yes" if sample.intent_id is not None else "no"
        out.append(
            InstructionExample(
                task="search_relevance",
                prompt=(f"domain: {sample.domain} query: {query.text} "
                        f"product: {product.title} task: search relevance"),
                target=label,
                domain=sample.domain,
                relation=None,
            )
        )
        for _ in range(negatives_per_positive):
            other = all_products[int(rng.integers(len(all_products)))]
            relevant = (
                query.intent_id is not None and query.intent_id in other.intent_ids
            )
            out.append(
                InstructionExample(
                    task="search_relevance",
                    prompt=(f"domain: {sample.domain} query: {query.text} "
                            f"product: {other.title} task: search relevance"),
                    target="yes" if relevant else "no",
                    domain=sample.domain,
                    relation=None,
                )
            )
    return out
