"""The COSMO knowledge graph container (Tables 1 & 3, Figure 8).

Stores refined :class:`~repro.core.triples.KnowledgeTriple` edges with
per-domain / per-behavior statistics matching the Table 3 layout, overall
node/edge/relation counts for the Table 1 comparison, and a tail-
hierarchy builder reproducing the Figure 8 organization (coarse intent →
refined intents → linked product concepts).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import networkx as nx

from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple

__all__ = ["KGStats", "HierarchyNode", "KnowledgeGraph"]


@dataclass(frozen=True)
class KGStats:
    """Table 1-style aggregate statistics."""

    nodes: int
    edges: int
    relations: int
    domains: int


@dataclass
class HierarchyNode:
    """One node of the Figure 8 intent hierarchy."""

    label: str
    children: list["HierarchyNode"] = field(default_factory=list)
    product_concepts: list[str] = field(default_factory=list)

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)


class KnowledgeGraph:
    """Deduplicating triple store with stats and hierarchy views."""

    def __init__(self):
        self._triples: dict[tuple[str, str, str], KnowledgeTriple] = {}
        # (domain, behavior) → edge count, for the Table 3 breakdown.
        self._domain_behavior_edges: Counter = Counter()

    # ------------------------------------------------------------------
    def add(self, triple: KnowledgeTriple) -> None:
        """Insert a triple, merging support for duplicates."""
        existing = self._triples.get(triple.key)
        if existing is None:
            self._triples[triple.key] = triple
        else:
            merged = KnowledgeTriple(
                head=existing.head,
                relation=existing.relation,
                tail=existing.tail,
                domain=existing.domain,
                behavior=existing.behavior,
                plausibility=max(existing.plausibility, triple.plausibility),
                typicality=max(existing.typicality, triple.typicality),
                support=existing.support + triple.support,
                head_ids=existing.head_ids,
            )
            self._triples[triple.key] = merged
            return
        self._domain_behavior_edges[(triple.domain, triple.behavior)] += 1

    def extend(self, triples: list[KnowledgeTriple]) -> None:
        for triple in triples:
            self.add(triple)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._triples)

    def triples(self) -> list[KnowledgeTriple]:
        return list(self._triples.values())

    def tails(self) -> list[str]:
        return sorted({t.tail for t in self._triples.values()})

    def by_relation(self, relation: Relation) -> list[KnowledgeTriple]:
        return [t for t in self._triples.values() if t.relation == relation]

    def for_domain(self, domain: str) -> list[KnowledgeTriple]:
        return [t for t in self._triples.values() if t.domain == domain]

    def edges_for(self, domain: str, behavior: str) -> int:
        """Table 3 cell: refined edge count per (domain, behavior)."""
        return self._domain_behavior_edges[(domain, behavior)]

    def stats(self) -> KGStats:
        """Table 1 aggregates."""
        heads = {t.head for t in self._triples.values()}
        tails = {t.tail for t in self._triples.values()}
        relations = {t.relation for t in self._triples.values()}
        domains = {t.domain for t in self._triples.values()}
        return KGStats(
            nodes=len(heads | tails),
            edges=len(self._triples),
            relations=len(relations),
            domains=len(domains),
        )

    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.MultiDiGraph:
        """Export as a labeled multigraph for downstream analysis."""
        graph = nx.MultiDiGraph()
        for triple in self._triples.values():
            graph.add_node(triple.head, kind="head")
            graph.add_node(triple.tail, kind="tail")
            graph.add_edge(
                triple.head,
                triple.tail,
                relation=triple.relation.value,
                domain=triple.domain,
                behavior=triple.behavior,
                plausibility=triple.plausibility,
                typicality=triple.typicality,
                support=triple.support,
            )
        return graph

    # ------------------------------------------------------------------
    def tail_hierarchy(self, domain: str | None = None) -> list[HierarchyNode]:
        """Organize tails into the Figure 8 coarse→fine hierarchy.

        A tail B is a child of tail A when B = "<modifier> A" (e.g.
        "winter camping" under "camping").  Each node also links the
        product concepts (head product types mentioned in heads) its
        edges connect to.
        """
        triples = self.triples() if domain is None else self.for_domain(domain)
        tails = {t.tail for t in triples}
        children_map: dict[str, list[str]] = defaultdict(list)
        roots: list[str] = []
        for tail in sorted(tails):
            parts = tail.split(" ", 1)
            parent = parts[1] if len(parts) == 2 and parts[1] in tails else None
            if parent is not None:
                children_map[parent].append(tail)
            else:
                roots.append(tail)

        tail_concepts: dict[str, set[str]] = defaultdict(set)
        for triple in triples:
            # Heads are "query" or "title_a ||| title_b"; the last two
            # title words approximate the product concept/type.
            for head_part in triple.head.split(" ||| "):
                words = head_part.split()
                if len(words) >= 2:
                    tail_concepts[triple.tail].add(" ".join(words[-2:]))

        def build(label: str) -> HierarchyNode:
            return HierarchyNode(
                label=label,
                children=[build(child) for child in sorted(children_map.get(label, []))],
                product_concepts=sorted(tail_concepts.get(label, set()))[:8],
            )

        return [build(root) for root in roots]
