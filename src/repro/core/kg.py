"""The COSMO knowledge graph container (Tables 1 & 3, Figure 8).

Stores refined :class:`~repro.core.triples.KnowledgeTriple` edges with
per-domain / per-behavior statistics matching the Table 3 layout, overall
node/edge/relation counts for the Table 1 comparison, and a tail-
hierarchy builder reproducing the Figure 8 organization (coarse intent →
refined intents → linked product concepts).

Storage is columnar: node, relation, domain and behavior strings are
interned once into id tables, and each edge is one row across parallel
numpy columns (head/relation/tail/domain/behavior ids, plausibility,
typicality, support).  A lazily-built CSR index over the head column
serves neighbor queries without scanning every edge.  The query surface
is unchanged from the dict-backed implementation — ``triples()`` still
returns :class:`~repro.core.triples.KnowledgeTriple` objects in first-
insert order with identical merge semantics — the columnar form is how
the hot path (stats, filters, neighbor lookups, (de)serialization,
snapshot digests) avoids per-edge Python object traffic.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple

__all__ = ["KGStats", "HierarchyNode", "KnowledgeGraph"]

_INITIAL_CAPACITY = 16


@dataclass(frozen=True)
class KGStats:
    """Table 1-style aggregate statistics."""

    nodes: int
    edges: int
    relations: int
    domains: int


@dataclass
class HierarchyNode:
    """One node of the Figure 8 intent hierarchy."""

    label: str
    children: list["HierarchyNode"] = field(default_factory=list)
    product_concepts: list[str] = field(default_factory=list)

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)


class _InternTable:
    """Append-only string ↔ dense-id table."""

    __slots__ = ("_ids", "_values")

    def __init__(self):
        self._ids: dict[str, int] = {}
        self._values: list[str] = []

    def intern(self, value: str) -> int:
        interned = self._ids.get(value)
        if interned is None:
            interned = len(self._values)
            self._ids[value] = interned
            self._values.append(value)
        return interned

    def id_of(self, value: str) -> int | None:
        return self._ids.get(value)

    def value(self, interned: int) -> str:
        return self._values[interned]

    def values(self) -> tuple[str, ...]:
        return tuple(self._values)

    def __len__(self) -> int:
        return len(self._values)


class KnowledgeGraph:
    """Deduplicating triple store with stats and hierarchy views.

    Edges live in parallel columns; heads and tails share one node id
    table, so Table 1's node count is just the table's length (the
    store is append-only — every interned node is referenced by at
    least one edge).
    """

    def __init__(self):
        self._nodes = _InternTable()
        self._relations = _InternTable()
        self._domains = _InternTable()
        self._behaviors = _InternTable()
        capacity = _INITIAL_CAPACITY
        self._head_col = np.empty(capacity, dtype=np.int32)
        self._rel_col = np.empty(capacity, dtype=np.int32)
        self._tail_col = np.empty(capacity, dtype=np.int32)
        self._domain_col = np.empty(capacity, dtype=np.int32)
        self._behavior_col = np.empty(capacity, dtype=np.int32)
        self._plaus_col = np.empty(capacity, dtype=np.float64)
        self._typ_col = np.empty(capacity, dtype=np.float64)
        self._support_col = np.empty(capacity, dtype=np.int64)
        self._size = 0
        #: (head id, relation id, tail id) → row, for duplicate merging.
        self._row_of: dict[tuple[int, int, int], int] = {}
        #: Ragged per-row provenance; stays a Python list (tuples vary
        #: in length and are only touched at materialization time).
        self._head_ids: list[tuple[str, ...]] = []
        # (domain, behavior) → edge count, for the Table 3 breakdown.
        self._domain_behavior_edges: Counter = Counter()
        self._csr_order: np.ndarray | None = None
        self._csr_offsets: np.ndarray | None = None
        self._csr_dirty = True

    # ------------------------------------------------------------------
    def add(self, triple: KnowledgeTriple) -> None:
        """Insert a triple, merging support for duplicates."""
        head_id = self._nodes.intern(triple.head)
        rel_id = self._relations.intern(triple.relation.value)
        tail_id = self._nodes.intern(triple.tail)
        key = (head_id, rel_id, tail_id)
        row = self._row_of.get(key)
        if row is not None:
            # Merge: best scores win, support accumulates, the first
            # insert's provenance (head_ids) and domain/behavior stick.
            if triple.plausibility > self._plaus_col[row]:
                self._plaus_col[row] = triple.plausibility
            if triple.typicality > self._typ_col[row]:
                self._typ_col[row] = triple.typicality
            self._support_col[row] += triple.support
            return
        row = self._size
        if row == len(self._head_col):
            self._grow()
        self._head_col[row] = head_id
        self._rel_col[row] = rel_id
        self._tail_col[row] = tail_id
        self._domain_col[row] = self._domains.intern(triple.domain)
        self._behavior_col[row] = self._behaviors.intern(triple.behavior)
        self._plaus_col[row] = triple.plausibility
        self._typ_col[row] = triple.typicality
        self._support_col[row] = triple.support
        self._head_ids.append(triple.head_ids)
        self._row_of[key] = row
        self._size = row + 1
        self._domain_behavior_edges[(triple.domain, triple.behavior)] += 1
        self._csr_dirty = True

    def _grow(self) -> None:
        capacity = max(_INITIAL_CAPACITY, 2 * len(self._head_col))
        for name in ("_head_col", "_rel_col", "_tail_col", "_domain_col",
                     "_behavior_col", "_plaus_col", "_typ_col",
                     "_support_col"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)

    def extend(self, triples: list[KnowledgeTriple]) -> None:
        for triple in triples:
            self.add(triple)

    # ------------------------------------------------------------------
    def _triple_at(self, row: int) -> KnowledgeTriple:
        return KnowledgeTriple(
            head=self._nodes.value(int(self._head_col[row])),
            relation=Relation(self._relations.value(int(self._rel_col[row]))),
            tail=self._nodes.value(int(self._tail_col[row])),
            domain=self._domains.value(int(self._domain_col[row])),
            behavior=self._behaviors.value(int(self._behavior_col[row])),
            plausibility=float(self._plaus_col[row]),
            typicality=float(self._typ_col[row]),
            support=int(self._support_col[row]),
            head_ids=self._head_ids[row],
        )

    def __len__(self) -> int:
        return self._size

    def triples(self) -> list[KnowledgeTriple]:
        return [self._triple_at(row) for row in range(self._size)]

    def tails(self) -> list[str]:
        tail_ids = np.unique(self._tail_col[: self._size])
        return sorted(self._nodes.value(int(tail_id)) for tail_id in tail_ids)

    def by_relation(self, relation: Relation) -> list[KnowledgeTriple]:
        rel_id = self._relations.id_of(relation.value)
        if rel_id is None:
            return []
        rows = np.nonzero(self._rel_col[: self._size] == rel_id)[0]
        return [self._triple_at(int(row)) for row in rows]

    def for_domain(self, domain: str) -> list[KnowledgeTriple]:
        domain_id = self._domains.id_of(domain)
        if domain_id is None:
            return []
        rows = np.nonzero(self._domain_col[: self._size] == domain_id)[0]
        return [self._triple_at(int(row)) for row in rows]

    def domains(self) -> list[str]:
        """Distinct edge domains in first-appearance order."""
        return list(self._domains.values())

    def edges_for(self, domain: str, behavior: str) -> int:
        """Table 3 cell: refined edge count per (domain, behavior)."""
        return self._domain_behavior_edges[(domain, behavior)]

    def stats(self) -> KGStats:
        """Table 1 aggregates — table lengths, no edge scan needed."""
        return KGStats(
            nodes=len(self._nodes),
            edges=self._size,
            relations=len(self._relations),
            domains=len(self._domains),
        )

    # ------------------------------------------------------------------
    # Neighbor queries (CSR over the head column)
    # ------------------------------------------------------------------
    def _build_csr(self) -> None:
        heads = self._head_col[: self._size]
        self._csr_order = np.argsort(heads, kind="stable")
        counts = np.bincount(heads, minlength=len(self._nodes))
        self._csr_offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)))
        self._csr_dirty = False

    def _head_rows(self, head: str) -> np.ndarray:
        node_id = self._nodes.id_of(head)
        if node_id is None:
            return np.empty(0, dtype=np.int64)
        if self._csr_dirty:
            self._build_csr()
        start = int(self._csr_offsets[node_id])
        end = int(self._csr_offsets[node_id + 1])
        return self._csr_order[start:end]

    def neighbors(self, head: str) -> list[KnowledgeTriple]:
        """Every edge out of ``head``, in insertion order.

        Served from the CSR index — O(degree) after an (amortized)
        index build, instead of a full-edge scan.
        """
        return [self._triple_at(int(row)) for row in self._head_rows(head)]

    def tails_of(self, head: str) -> list[str]:
        """Sorted distinct tails reachable from ``head`` in one hop."""
        rows = self._head_rows(head)
        if rows.size == 0:
            return []
        tail_ids = np.unique(self._tail_col[rows])
        return sorted(self._nodes.value(int(tail_id)) for tail_id in tail_ids)

    # ------------------------------------------------------------------
    def columns(self) -> dict:
        """Read-only view of the columnar form.

        Arrays are trimmed views over the live columns (callers must not
        mutate them); the id tables come along as string tuples.  This
        is the zero-copy surface :mod:`repro.core.kg_io` serializes and
        :mod:`repro.refresh.snapshot` content-addresses.
        """
        n = self._size
        return {
            "head": self._head_col[:n],
            "relation": self._rel_col[:n],
            "tail": self._tail_col[:n],
            "domain": self._domain_col[:n],
            "behavior": self._behavior_col[:n],
            "plausibility": self._plaus_col[:n],
            "typicality": self._typ_col[:n],
            "support": self._support_col[:n],
            "nodes": self._nodes.values(),
            "relations": self._relations.values(),
            "domains": self._domains.values(),
            "behaviors": self._behaviors.values(),
            "head_ids": tuple(self._head_ids),
        }

    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.MultiDiGraph:
        """Export as a labeled multigraph for downstream analysis."""
        graph = nx.MultiDiGraph()
        for triple in self.triples():
            graph.add_node(triple.head, kind="head")
            graph.add_node(triple.tail, kind="tail")
            graph.add_edge(
                triple.head,
                triple.tail,
                relation=triple.relation.value,
                domain=triple.domain,
                behavior=triple.behavior,
                plausibility=triple.plausibility,
                typicality=triple.typicality,
                support=triple.support,
            )
        return graph

    # ------------------------------------------------------------------
    def tail_hierarchy(self, domain: str | None = None) -> list[HierarchyNode]:
        """Organize tails into the Figure 8 coarse→fine hierarchy.

        A tail B is a child of tail A when B = "<modifier> A" (e.g.
        "winter camping" under "camping").  Each node also links the
        product concepts (head product types mentioned in heads) its
        edges connect to.
        """
        triples = self.triples() if domain is None else self.for_domain(domain)
        tails = {t.tail for t in triples}
        children_map: dict[str, list[str]] = defaultdict(list)
        roots: list[str] = []
        for tail in sorted(tails):
            parts = tail.split(" ", 1)
            parent = parts[1] if len(parts) == 2 and parts[1] in tails else None
            if parent is not None:
                children_map[parent].append(tail)
            else:
                roots.append(tail)

        tail_concepts: dict[str, set[str]] = defaultdict(set)
        for triple in triples:
            # Heads are "query" or "title_a ||| title_b"; the last two
            # title words approximate the product concept/type.
            for head_part in triple.head.split(" ||| "):
                words = head_part.split()
                if len(words) >= 2:
                    tail_concepts[triple.tail].add(" ".join(words[-2:]))

        def build(label: str) -> HierarchyNode:
            return HierarchyNode(
                label=label,
                children=[build(child) for child in sorted(children_map.get(label, []))],
                product_concepts=sorted(tail_concepts.get(label, set()))[:8],
            )

        return [build(root) for root in roots]
