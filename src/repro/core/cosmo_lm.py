"""COSMO-LM: the instruction-finetuned knowledge model (§3.4).

Wraps the trainable student LM with tokenizer construction, instruction
finetuning, knowledge generation for both behavior types, label
prediction for the auxiliary tasks, and an oracle-based quality
evaluator used by the distillation benches (is a generated tail the
behavior's true intent? is it at least true of the product?).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass

from repro.behavior.world import World
from repro.core.instructions import InstructionDataset
from repro.core.relations import parse_predicate
from repro.core.triples import BehaviorSample
from repro.llm.interface import Generation, GenerationBatch, LatencyModel
from repro.llm.seq2seq import Seq2SeqLM
from repro.llm.student import StudentLM
from repro.llm.tokenizer import Tokenizer

__all__ = ["CosmoLMConfig", "CosmoLM", "KnowledgeQuality"]


@dataclass(frozen=True)
class CosmoLMConfig:
    """Model size and finetuning hyperparameters."""

    architecture: str = "seq2seq"  # "seq2seq" (attention) | "lm" (ablation)
    embed_dim: int = 48
    hidden_dim: int = 96
    epochs: int = 10
    batch_size: int = 32
    lr: float = 4e-3
    max_len: int = 44
    # One LLaMA-7b learns all five tasks jointly (§3.4); at our ~1e5
    # parameter scale joint training lets the numerous yes/no tasks
    # crowd out generation, so the default splits the tasks over two
    # small heads behind the same API (see DESIGN.md).
    split_heads: bool = True


@dataclass(frozen=True)
class KnowledgeQuality:
    """Oracle judgment of a batch of generations."""

    total: int
    parsed: int
    typical: int
    plausible: int

    @property
    def typical_rate(self) -> float:
        return self.typical / self.total if self.total else 0.0

    @property
    def plausible_rate(self) -> float:
        return self.plausible / self.total if self.total else 0.0


class CosmoLM:
    """The deployable knowledge model: finetune once, generate cheaply."""

    def __init__(
        self,
        config: CosmoLMConfig | None = None,
        seed: int = 0,
        latency: LatencyModel | None = None,
    ):
        self.config = config or CosmoLMConfig()
        self.seed = seed
        self.latency = latency or LatencyModel()
        self.tokenizer: Tokenizer | None = None
        self.model: StudentLM | Seq2SeqLM | None = None
        self.classifier: StudentLM | Seq2SeqLM | None = None

    # ------------------------------------------------------------------
    def _model_class(self):
        if self.config.architecture == "seq2seq":
            return Seq2SeqLM
        if self.config.architecture == "lm":
            return StudentLM
        raise ValueError(f"unknown architecture {self.config.architecture!r}")

    def _new_model(self, name: str):
        return self._model_class()(
            self.tokenizer,
            embed_dim=self.config.embed_dim,
            hidden_dim=self.config.hidden_dim,
            name=name,
            seed=self.seed,
            latency=self.latency,
        )

    def finetune(self, dataset: InstructionDataset, extra_corpus: list[str] | None = None) -> list[float]:
        """Build the vocabulary and instruction-finetune the student.

        Returns the generation head's per-epoch losses.
        """
        corpus = [example.prompt for example in dataset.examples]
        corpus += [example.target for example in dataset.examples]
        if extra_corpus:
            corpus += extra_corpus
        self.tokenizer = Tokenizer().fit(corpus)
        self.model = self._new_model("cosmo-lm-gen")
        if not self.config.split_heads:
            self.classifier = self.model
            return self.model.fit(
                dataset.pairs(),
                epochs=self.config.epochs,
                batch_size=self.config.batch_size,
                lr=self.config.lr,
                max_len=self.config.max_len,
            )
        generation = [(e.prompt, e.target) for e in dataset.examples
                      if e.task == "generation"]
        labels = [(e.prompt, e.target) for e in dataset.examples
                  if e.task != "generation"]
        # The generation subset is much smaller than the label tasks, so
        # the generation head gets proportionally more epochs.
        losses = self.model.fit(
            generation or dataset.pairs(),
            epochs=min(self.config.epochs * 2, 40),
            batch_size=self.config.batch_size,
            lr=self.config.lr,
            max_len=self.config.max_len,
        )
        self.classifier = self._new_model("cosmo-lm-cls")
        if labels:
            self.classifier.fit(
                labels,
                epochs=max(self.config.epochs // 2, 2),
                batch_size=self.config.batch_size,
                lr=self.config.lr,
                max_len=self.config.max_len,
            )
        return losses

    # ------------------------------------------------------------------
    # Persistence (the SageMaker "model refresh" needs a durable artifact)
    # ------------------------------------------------------------------
    def save(self, directory: str | pathlib.Path) -> None:
        """Persist config, tokenizer and both heads to a directory."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if self.tokenizer is None or self.model is None:
            raise RuntimeError("nothing to save: finetune first")
        (directory / "config.json").write_text(json.dumps(asdict(self.config)))
        self.tokenizer.save(directory / "tokenizer.json")
        self.model.save(str(directory / "generator.npz"))
        if self.classifier is not None and self.classifier is not self.model:
            self.classifier.save(str(directory / "classifier.npz"))

    @classmethod
    def load(cls, directory: str | pathlib.Path, seed: int = 0) -> "CosmoLM":
        """Restore a model previously written by :meth:`save`."""
        directory = pathlib.Path(directory)
        config = CosmoLMConfig(**json.loads((directory / "config.json").read_text()))
        instance = cls(config=config, seed=seed)
        instance.tokenizer = Tokenizer.load(directory / "tokenizer.json")
        instance.model = instance._new_model("cosmo-lm-gen")
        instance.model.load(str(directory / "generator.npz"))
        instance.model.eval()
        classifier_path = directory / "classifier.npz"
        if classifier_path.exists():
            instance.classifier = instance._new_model("cosmo-lm-cls")
            instance.classifier.load(str(classifier_path))
            instance.classifier.eval()
        else:
            instance.classifier = instance.model
        return instance

    def _require_model(self) -> StudentLM | Seq2SeqLM:
        if self.model is None:
            raise RuntimeError("CosmoLM must be finetuned before inference")
        return self.model

    def _require_classifier(self) -> StudentLM | Seq2SeqLM:
        if self.classifier is not None:
            return self.classifier
        return self._require_model()

    @property
    def parameter_count(self) -> int:
        total = self._require_model().parameter_count
        if self.classifier is not None and self.classifier is not self.model:
            total += self.classifier.parameter_count
        return total

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @staticmethod
    def searchbuy_prompt(query_text: str, product_title: str, domain: str,
                         product_type: str = "", task: str = "generation") -> str:
        if task == "generation":
            # Canonical generation interface: query + product type (the
            # fields the feature store serves), matching training.
            type_part = f"type: {product_type} " if product_type else ""
            return f"domain: {domain} search query: {query_text} {type_part}task: {task}"
        type_part = f"type: {product_type} " if product_type else ""
        return (
            f"behavior: search buy domain: {domain} "
            f"search query: {query_text} product: {product_title} "
            f"{type_part}task: {task}"
        )

    @staticmethod
    def cobuy_prompt(title_a: str, title_b: str, domain: str,
                     type_a: str = "", type_b: str = "",
                     task: str = "generation") -> str:
        if task == "generation" and type_a and type_b:
            return f"domain: {domain} types: {type_a} and {type_b} task: {task}"
        type_part = f"types: {type_a} and {type_b} " if type_a and type_b else ""
        return (
            f"behavior: co buy domain: {domain} "
            f"products bought together: {title_a} and {title_b} "
            f"{type_part}task: {task}"
        )

    def generate_batch(self, prompts: list[str]) -> GenerationBatch:
        """Batched greedy knowledge generation — the
        :class:`~repro.llm.interface.KnowledgeGenerator` entrypoint the
        serving stack calls."""
        return GenerationBatch(generations=list(self._require_model().decode_batch(prompts)))

    def generate_knowledge(self, prompts: list[str], max_new_tokens: int = 14) -> list[Generation]:
        """Deprecated shim over :meth:`generate_batch` (kept for
        offline/pipeline callers; serving code must use the batch
        entrypoint)."""
        return self._require_model().decode_batch(prompts, max_new_tokens=max_new_tokens)

    def generate_reranked(
        self,
        prompts: list[str],
        num_candidates: int = 4,
        temperature: float = 0.7,
    ) -> list[Generation]:
        """Sample-and-rerank generation (§3.4: the finetuned LM both
        generates knowledge *and judges its quality*).

        For each prompt, the greedy candidate plus ``num_candidates - 1``
        sampled ones are scored by the model's own typicality head
        (log p("yes") − log p("no")); the best-scoring candidate wins.
        Costs ~``num_candidates``× a greedy pass, so this is the
        quality-over-latency mode.
        """
        from repro.utils.rng import spawn_rng

        model = self._require_model()
        if not hasattr(model, "_sample_top_k"):
            raise RuntimeError("reranked generation requires the seq2seq architecture")
        rng = spawn_rng(self.seed, "rerank-sampling")
        pools: list[list[Generation]] = [model.decode_batch(prompts)]
        for _ in range(max(num_candidates - 1, 0)):
            pools.append(model.decode_batch(prompts, temperature=temperature, rng=rng))
        winners: list[Generation] = []
        for index, prompt in enumerate(prompts):
            body = prompt.rsplit(" task: ", 1)[0]
            best, best_score = None, -float("inf")
            seen: set[str] = set()
            for pool in pools:
                candidate = pool[index]
                if not candidate.text or candidate.text in seen:
                    continue
                seen.add(candidate.text)
                judge_prompt = (
                    f"{body} knowledge: {candidate.text.rstrip('.')} task: typicality"
                )
                judge = self._require_classifier()
                score = (judge.sequence_logprob(judge_prompt, "yes")
                         - judge.sequence_logprob(judge_prompt, "no"))
                if score > best_score:
                    best, best_score = candidate, score
            winners.append(best if best is not None else pools[0][index])
        return winners

    def knowledge_for_sample(self, world: World, sample: BehaviorSample) -> str:
        """One-call convenience: behavior sample → knowledge text."""
        return self.generate_batch([self.prompt_for_sample(world, sample)]).require()[0].text

    def prompt_for_sample(self, world: World, sample: BehaviorSample) -> str:
        if sample.behavior == "search-buy":
            query = world.queries.get(sample.query_id)
            product = world.catalog.get(sample.product_ids[0])
            return self.searchbuy_prompt(
                query.text, product.title, sample.domain,
                product_type=product.product_type,
            )
        product_a = world.catalog.get(sample.product_ids[0])
        product_b = world.catalog.get(sample.product_ids[1])
        return self.cobuy_prompt(
            product_a.title, product_b.title, sample.domain,
            type_a=product_a.product_type, type_b=product_b.product_type,
        )

    # ------------------------------------------------------------------
    # Label prediction (auxiliary tasks)
    # ------------------------------------------------------------------
    def predict_label(self, task: str, prompt_body: str) -> str:
        """yes/no prediction for the auxiliary tasks."""
        return self._require_classifier().classify(f"{prompt_body} task: {task}")

    def predict_typicality(self, behavior_prompt: str, knowledge: str) -> str:
        """yes/no typicality judgment for a (behavior, knowledge) pair.

        ``behavior_prompt`` is a generation-style prompt; its task marker
        is swapped for the typicality one.
        """
        body = behavior_prompt.rsplit(" task: ", 1)[0]
        return self._require_classifier().classify(
            f"{body} knowledge: {knowledge} task: typicality"
        )

    # ------------------------------------------------------------------
    # Oracle evaluation
    # ------------------------------------------------------------------
    @staticmethod
    def judge_generations(
        world: World,
        samples: list[BehaviorSample],
        texts: list[str],
    ) -> KnowledgeQuality:
        """Score generations against the world's ground truth.

        *typical*: the parsed tail names the behavior's true intent (or,
        when the behavior has no single intent, any intent shared by all
        head products).  *plausible*: the tail names any intent of any
        head product.
        """
        parsed = typical = plausible = 0
        for sample, text in zip(samples, texts):
            result = parse_predicate(text)
            if result is None:
                continue
            parsed += 1
            _, tail = result
            tail_norm = tail.lower().strip()
            head_tails: set[str] = set()
            for product_id in sample.product_ids:
                for intent_id in world.catalog.get(product_id).intent_ids:
                    head_tails.add(world.intents.get(intent_id).tail.lower())
            if tail_norm in head_tails:
                plausible += 1
            if sample.intent_id is not None:
                true_tail = world.intents.get(sample.intent_id).tail.lower()
                if tail_norm == true_tail:
                    typical += 1
        return KnowledgeQuality(
            total=len(texts), parsed=parsed, typical=typical, plausible=plausible
        )
