"""End-to-end COSMO pipeline orchestration (Figure 2).

``CosmoPipeline.run()`` executes the paper's offline knowledge-generation
flow: simulate behaviors → sample representative pairs → harvest teacher
candidates → refine → annotation sampling (Eq. 2) → human-in-the-loop
annotation → critic training → instruction-data construction → COSMO-LM
finetuning → KG assembly with COSMO-LM expansion.  The returned
:class:`PipelineResult` carries every intermediate artifact the
evaluation benches need (Table 3/4 statistics, critic accuracy, latency
accounting, the KG itself).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.annotation.annotators import AnnotatorPool
from repro.annotation.audit import AuditReport, audit_annotations
from repro.annotation.schema import AnnotationResult
from repro.behavior.cobuy import CoBuyLog, simulate_cobuy
from repro.behavior.searchbuy import SearchBuyLog, simulate_searchbuy
from repro.behavior.world import World, WorldConfig
from repro.core.annotation_sampling import sample_for_annotation
from repro.core.cosmo_lm import CosmoLM, CosmoLMConfig
from repro.core.critic import CriticClassifier, CriticConfig
from repro.core.filtering import FilterConfig, FilterReport, KnowledgeFilter
from repro.core.generation import generate_candidates
from repro.core.instructions import InstructionDataset, build_instruction_dataset
from repro.core.kg import KnowledgeGraph
from repro.core.relations import parse_predicate
from repro.core.sampling import SamplingConfig, sample_cobuy, sample_products, sample_searchbuy
from repro.core.triples import BehaviorSample, KnowledgeCandidate, KnowledgeTriple
from repro.embeddings.encoder import TextEncoder
from repro.llm.interface import LatencyModel
from repro.llm.teacher import TeacherLLM
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.utils.rng import spawn_rng

__all__ = ["PipelineConfig", "PipelineResult", "CosmoPipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """All scale and hyperparameter knobs for one pipeline run."""

    seed: int = 0
    world: WorldConfig = field(default_factory=WorldConfig)
    cobuy_pairs_per_domain: int = 120
    searchbuy_records_per_domain: int = 150
    candidates_per_sample: int = 3
    annotation_budget: int = 600  # split evenly across the two behaviors
    uniform_annotation_sampling: bool = False
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    filter: FilterConfig = field(default_factory=FilterConfig)
    critic: CriticConfig = field(default_factory=CriticConfig)
    lm: CosmoLMConfig = field(default_factory=CosmoLMConfig)
    finetune_lm: bool = True
    expand_with_lm: bool = True


@dataclass
class PipelineResult:
    """Every artifact of one pipeline run."""

    config: PipelineConfig
    world: World
    cobuy: CoBuyLog
    searchbuy: SearchBuyLog
    samples: list[BehaviorSample]
    candidates: list[KnowledgeCandidate]
    filter_report: FilterReport
    filtered: list[KnowledgeCandidate]
    annotated_candidates: list[KnowledgeCandidate]
    annotations: list[AnnotationResult]
    audit: AuditReport
    quality_ratios: dict[str, dict[str, float]]
    critic: CriticClassifier
    critic_accuracy: dict[str, float]
    instruction_dataset: InstructionDataset
    cosmo_lm: CosmoLM | None
    kg: KnowledgeGraph
    teacher_latency: LatencyModel
    lm_latency: LatencyModel

    # Table 3 bookkeeping --------------------------------------------------
    def behavior_pair_counts(self) -> Counter:
        """(domain, behavior) → sampled behavior pairs."""
        return Counter((s.domain, s.behavior) for s in self.samples)

    def annotation_counts(self) -> Counter:
        """(domain, behavior) → annotated candidates."""
        return Counter(
            (c.sample.domain, c.sample.behavior) for c in self.annotated_candidates
        )


class CosmoPipeline:
    """Drives the full offline knowledge-generation flow.

    Observability: per-stage spans land on ``tracer`` (timed on simulated
    LLM seconds — the run's only notion of elapsed time — so traces
    replay bit-identically), and per-stage item counts plus simulated
    LLM seconds land on ``registry``.  Both default to private instances
    so the pipeline stays dependency-free for callers that don't care.
    """

    def __init__(self, config: PipelineConfig | None = None,
                 registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None):
        self.config = config or PipelineConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer or Tracer()
        self._stage_items = self.registry.counter(
            "pipeline_stage_items_total",
            "items produced by each pipeline stage", ("stage",),
        )
        self._llm_seconds = self.registry.counter(
            "pipeline_llm_simulated_seconds_total",
            "simulated LLM seconds consumed, by model", ("model",),
        )
        # The knowledge funnel (candidates → filtered → critic_accepted):
        # the stage counter above tracks *all* stages; this one tracks
        # only the narrowing quality path, in the shape
        # obs.kg_health.funnel_from_registry folds into health reports.
        self._funnel_items = self.registry.counter(
            "pipeline_funnel_total",
            "knowledge funnel items per stage", ("stage",),
        )

    def _count(self, stage: str, items: int) -> None:
        self._stage_items.labels(stage=stage).inc(items)

    def _funnel(self, stage: str, items: int) -> None:
        self._funnel_items.labels(stage=stage).inc(items)

    # ------------------------------------------------------------------
    def run(self) -> PipelineResult:
        cfg = self.config
        teacher_latency = LatencyModel()
        lm_latency = LatencyModel()

        # The pipeline's deterministic timebase: simulated LLM seconds
        # accumulated so far.  Stages that never touch a model have zero
        # duration by construction; LLM-bound stages show their true
        # simulated cost.
        def sim_clock() -> float:
            return teacher_latency.total_simulated_s + lm_latency.total_simulated_s

        with self.tracer.clocked(sim_clock), \
                self.tracer.span("pipeline.run", seed=cfg.seed):
            result = self._run(cfg, teacher_latency, lm_latency)
        self._llm_seconds.labels(model="teacher").inc(teacher_latency.total_simulated_s)
        self._llm_seconds.labels(model="cosmo_lm").inc(lm_latency.total_simulated_s)
        return result

    def _run(self, cfg: PipelineConfig, teacher_latency: LatencyModel,
             lm_latency: LatencyModel) -> PipelineResult:
        world = World(cfg.world)

        # 1. Behavior simulation (the raw logs).
        with self.tracer.span("pipeline.behavior_simulation") as span:
            cobuy = simulate_cobuy(
                world, pairs_per_domain=cfg.cobuy_pairs_per_domain, seed=cfg.seed
            )
            searchbuy = simulate_searchbuy(
                world, records_per_domain=cfg.searchbuy_records_per_domain, seed=cfg.seed
            )
            span.set_attribute("cobuy_pairs", len(cobuy))
            span.set_attribute("searchbuy_records", len(searchbuy))
        self._count("behavior_simulation", len(cobuy) + len(searchbuy))

        # 2. Representative behavior sampling (§3.2.1).
        with self.tracer.span("pipeline.behavior_sampling") as span:
            selected = sample_products(
                world, cobuy, searchbuy, cfg.sampling.top_product_fraction
            )
            samples = sample_cobuy(world, cobuy, selected, cfg.sampling)
            samples += sample_searchbuy(world, searchbuy, cfg.sampling)
            span.set_attribute("samples", len(samples))
        self._count("behavior_sampling", len(samples))

        # 3. Teacher harvesting (§3.2.2).
        with self.tracer.span("pipeline.teacher_generation") as span:
            teacher = TeacherLLM(world, latency=teacher_latency, seed=cfg.seed)
            candidates = generate_candidates(
                world,
                teacher,
                samples,
                candidates_per_sample=cfg.candidates_per_sample,
                seed=cfg.seed,
            )
            span.set_attribute("candidates", len(candidates))
        self._count("teacher_generation", len(candidates))
        self._funnel("candidates", len(candidates))

        # 4. Refinement (§3.3.1).
        with self.tracer.span("pipeline.filtering") as span:
            encoder = TextEncoder(seed=cfg.seed)
            knowledge_filter = KnowledgeFilter(encoder, config=cfg.filter)
            filtered, filter_report = knowledge_filter.apply(candidates)
            span.set_attribute("kept", len(filtered))
        self._count("filtering", len(filtered))
        self._funnel("filtered", len(filtered))

        # 5. Annotation sampling (Eq. 2) + human-in-the-loop labeling.
        with self.tracer.span("pipeline.annotation") as span:
            per_behavior_budget = cfg.annotation_budget // 2
            annotated_candidates: list[KnowledgeCandidate] = []
            for behavior in ("co-buy", "search-buy"):
                pool = [c for c in filtered if c.sample.behavior == behavior]
                annotated_candidates += sample_for_annotation(
                    pool,
                    cobuy,
                    searchbuy,
                    budget=per_behavior_budget,
                    uniform=cfg.uniform_annotation_sampling,
                    seed=cfg.seed,
                )
            annotators = AnnotatorPool(seed=cfg.seed)
            annotations = annotators.annotate_batch(
                [(c.candidate_id, c.truth.quality) for c in annotated_candidates]
            )
            qualities = {c.candidate_id: c.truth.quality for c in annotated_candidates}
            audit = audit_annotations(annotations, qualities, seed=cfg.seed)
            quality_ratios = self._quality_ratios(annotated_candidates, annotations)
            span.set_attribute("annotated", len(annotations))
        self._count("annotation", len(annotations))

        # 6. Critic training and population (§3.3.2).  ``annotated_candidates``
        # is ordered co-buy-then-search-buy, so a positional 85/15 split would
        # evaluate on a single behavior; shuffle with the run seed first.
        with self.tracer.span("pipeline.critic") as span:
            critic = CriticClassifier(encoder, config=cfg.critic, seed=cfg.seed)
            order = spawn_rng(cfg.seed, "critic-split").permutation(len(annotated_candidates))
            shuffled_candidates = [annotated_candidates[i] for i in order]
            shuffled_annotations = [annotations[i] for i in order]
            split = max(1, int(len(shuffled_candidates) * 0.85))
            critic.fit(shuffled_candidates[:split], shuffled_annotations[:split])
            if split < len(shuffled_candidates):
                critic_accuracy = critic.accuracy(
                    shuffled_candidates[split:], shuffled_annotations[split:]
                )
            else:
                critic_accuracy = {"plausibility": float("nan"), "typicality": float("nan")}
            refined = critic.populate(filtered)
            span.set_attribute("refined", len(refined))
        self._count("critic", len(refined))
        self._funnel("critic_accepted", len(refined))

        # 7. Instruction data (§3.4) and COSMO-LM finetuning.
        with self.tracer.span("pipeline.instruction_build") as span:
            instruction_dataset = build_instruction_dataset(
                world, annotated_candidates, annotations, seed=cfg.seed
            )
            span.set_attribute("examples", len(instruction_dataset))
        self._count("instruction_build", len(instruction_dataset))

        cosmo_lm: CosmoLM | None = None
        if cfg.finetune_lm and len(instruction_dataset):
            with self.tracer.span("pipeline.lm_finetune") as span:
                cosmo_lm = CosmoLM(config=cfg.lm, seed=cfg.seed, latency=lm_latency)
                cosmo_lm.finetune(instruction_dataset)
                span.set_attribute("examples", len(instruction_dataset))
            self._count("lm_finetune", len(instruction_dataset))

        # 8. KG assembly: refined teacher knowledge + COSMO-LM expansion.
        with self.tracer.span("pipeline.kg_assembly") as span:
            kg = KnowledgeGraph()
            kg.extend([self._to_triple(c) for c in refined])
            if cosmo_lm is not None and cfg.expand_with_lm:
                kg.extend(self._expand(world, cosmo_lm, critic, samples))
            span.set_attribute("triples", len(kg))
        self._count("kg_assembly", len(kg))

        return PipelineResult(
            config=cfg,
            world=world,
            cobuy=cobuy,
            searchbuy=searchbuy,
            samples=samples,
            candidates=candidates,
            filter_report=filter_report,
            filtered=filtered,
            annotated_candidates=annotated_candidates,
            annotations=annotations,
            audit=audit,
            quality_ratios=quality_ratios,
            critic=critic,
            critic_accuracy=critic_accuracy,
            instruction_dataset=instruction_dataset,
            cosmo_lm=cosmo_lm,
            kg=kg,
            teacher_latency=teacher_latency,
            lm_latency=lm_latency,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _quality_ratios(
        candidates: list[KnowledgeCandidate],
        annotations: list[AnnotationResult],
    ) -> dict[str, dict[str, float]]:
        """Table 4: plausibility/typicality ratios per behavior."""
        totals: Counter = Counter()
        plausible: Counter = Counter()
        typical: Counter = Counter()
        for candidate, annotation in zip(candidates, annotations):
            behavior = candidate.sample.behavior
            totals[behavior] += 1
            plausible[behavior] += int(annotation.plausible)
            typical[behavior] += int(annotation.typical)
        return {
            behavior: {
                "plausibility": plausible[behavior] / totals[behavior],
                "typicality": typical[behavior] / totals[behavior],
            }
            for behavior in totals
        }

    @staticmethod
    def _to_triple(candidate: KnowledgeCandidate) -> KnowledgeTriple:
        return KnowledgeTriple(
            head=candidate.sample.head_text,
            relation=candidate.relation,
            tail=candidate.tail,
            domain=candidate.sample.domain,
            behavior=candidate.sample.behavior,
            plausibility=candidate.plausibility_score or 0.0,
            typicality=candidate.typicality_score or 0.0,
            support=1,
            head_ids=candidate.sample.product_ids,
        )

    def _expand(
        self,
        world: World,
        cosmo_lm: CosmoLM,
        critic: CriticClassifier,
        samples: list[BehaviorSample],
        chunk: int = 64,
    ) -> list[KnowledgeTriple]:
        """COSMO-LM expansion: generate knowledge for every sampled
        behavior, score with the critic, keep the plausible edges."""
        triples: list[KnowledgeTriple] = []
        for start in range(0, len(samples), chunk):
            batch = samples[start : start + chunk]
            prompts = [cosmo_lm.prompt_for_sample(world, s) for s in batch]
            generations = cosmo_lm.generate_batch(prompts).require()
            candidates = []
            for sample, generation in zip(batch, generations):
                parsed = parse_predicate(generation.text)
                if parsed is None:
                    continue
                relation, tail = parsed
                candidates.append(
                    KnowledgeCandidate(
                        candidate_id=f"lm-{sample.sample_id}",
                        sample=sample,
                        text=generation.text,
                        relation=relation,
                        tail=tail,
                    )
                )
            kept = critic.populate(candidates)
            triples.extend(self._to_triple(c) for c in kept)
        return triples
