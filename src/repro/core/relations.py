"""The COSMO relation taxonomy (paper Table 2).

Fifteen e-commerce commonsense relations, each with a *tail type*
(function, activity, audience, ...), a natural-language predicate template
used both for verbalizing knowledge and for parsing LLM generations, and
the paper's running example.  The four *seed relations* (§3.1) are the
generic ConceptNet-style relations the data-driven relation discovery
starts from.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "TailType",
    "Relation",
    "RELATION_SPECS",
    "SEED_RELATIONS",
    "relations_for_tail_type",
    "verbalize",
    "parse_predicate",
]


class TailType(str, Enum):
    """What kind of phrase fills the tail slot (Table 2, middle column)."""

    FUNCTION = "Function / Usage"
    ACTIVITY = "Event / Activity"
    AUDIENCE = "Audience"
    CONCEPT = "Concept / Product Type"
    TIME = "Time / Season / Event"
    LOCATION = "Location / Facility"
    BODY_PART = "Body Part"
    COMPLEMENT = "Complementary"
    INTEREST = "Interest"


class Relation(str, Enum):
    """The 15 mined COSMO relations (Table 2)."""

    USED_FOR_FUNC = "USED_FOR_FUNC"
    USED_FOR_EVE = "USED_FOR_EVE"
    USED_FOR_AUD = "USED_FOR_AUD"
    CAPABLE_OF = "CAPABLE_OF"
    USED_TO = "USED_TO"
    USED_AS = "USED_AS"
    IS_A = "IS_A"
    USED_ON = "USED_ON"
    USED_IN_LOC = "USED_IN_LOC"
    USED_IN_BODY = "USED_IN_BODY"
    USED_WITH = "USED_WITH"
    USED_BY = "USED_BY"
    X_INTERESTED_IN = "xInterested_in"
    X_IS_A = "xIs_A"
    X_WANT = "xWant"


@dataclass(frozen=True)
class RelationSpec:
    """Static metadata for one relation."""

    relation: Relation
    tail_type: TailType
    # Predicate template; "{}" is the tail slot.  Teacher generations and
    # COSMO-LM outputs verbalize knowledge with this surface form.
    template: str
    # The paper's example tail for this relation (Table 2, right column).
    example: str
    # Which of the four seed relations this was mined from (§3.1).
    seed: str


RELATION_SPECS: dict[Relation, RelationSpec] = {
    spec.relation: spec
    for spec in (
        RelationSpec(Relation.USED_FOR_FUNC, TailType.FUNCTION,
                     "it is used for {}", "dry face", "usedFor"),
        RelationSpec(Relation.USED_FOR_EVE, TailType.ACTIVITY,
                     "it can be used when they {}", "walk the dog", "usedFor"),
        RelationSpec(Relation.USED_FOR_AUD, TailType.AUDIENCE,
                     "it is designed for {}", "daycare worker", "usedFor"),
        RelationSpec(Relation.CAPABLE_OF, TailType.FUNCTION,
                     "it is capable of {}", "hold snacks", "capableOf"),
        RelationSpec(Relation.USED_TO, TailType.FUNCTION,
                     "it is used to {}", "build a fence", "usedFor"),
        RelationSpec(Relation.USED_AS, TailType.CONCEPT,
                     "it is used as {}", "smart watch", "usedFor"),
        RelationSpec(Relation.IS_A, TailType.CONCEPT,
                     "it is a type of {}", "normal suit", "isA"),
        RelationSpec(Relation.USED_ON, TailType.TIME,
                     "it is used during {}", "late winter", "usedFor"),
        RelationSpec(Relation.USED_IN_LOC, TailType.LOCATION,
                     "it is used in the {}", "bedroom", "usedFor"),
        RelationSpec(Relation.USED_IN_BODY, TailType.BODY_PART,
                     "it is used on {}", "sensitive skin", "usedFor"),
        RelationSpec(Relation.USED_WITH, TailType.COMPLEMENT,
                     "it is used with {}", "surface cover", "usedFor"),
        RelationSpec(Relation.USED_BY, TailType.AUDIENCE,
                     "it is used by {}", "cat owner", "usedFor"),
        RelationSpec(Relation.X_INTERESTED_IN, TailType.INTEREST,
                     "the customer is interested in {}", "herbal medicine", "cause"),
        RelationSpec(Relation.X_IS_A, TailType.AUDIENCE,
                     "the customer is one of {}", "pregnant women", "cause"),
        RelationSpec(Relation.X_WANT, TailType.ACTIVITY,
                     "the customer wants to {}", "play tennis", "cause"),
    )
}

# The four generic seed relations relation discovery starts from (§3.1).
SEED_RELATIONS: tuple[str, ...] = ("usedFor", "capableOf", "isA", "cause")

# Prefix → candidate relations, ordered longest-prefix-first for parsing.
_PREFIXES: list[tuple[str, Relation]] = sorted(
    (
        (spec.template.split("{}")[0].strip(), spec.relation)
        for spec in RELATION_SPECS.values()
    ),
    key=lambda item: -len(item[0]),
)


def relations_for_tail_type(tail_type: TailType) -> list[Relation]:
    """All relations whose tail slot takes ``tail_type`` phrases."""
    return [
        spec.relation
        for spec in RELATION_SPECS.values()
        if spec.tail_type == tail_type
    ]


def verbalize(relation: Relation, tail: str) -> str:
    """Render ``(relation, tail)`` as its natural-language predicate."""
    return RELATION_SPECS[relation].template.format(tail)


def parse_predicate(text: str) -> tuple[Relation, str] | None:
    """Inverse of :func:`verbalize`: recover ``(relation, tail)`` from text.

    Returns ``None`` when no relation template matches — the caller treats
    such generations as unparseable noise.  Longest-prefix matching
    disambiguates templates sharing a stem (e.g. ``used in the`` vs
    ``used on``).
    """
    stripped = text.strip().rstrip(".").strip()
    lowered = stripped.lower()
    for prefix, relation in _PREFIXES:
        if lowered.startswith(prefix):
            tail = stripped[len(prefix):].strip()
            if tail:
                return relation, tail
    return None
