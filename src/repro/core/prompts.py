"""QA-style prompt construction (§3.2.2, Figure 3).

User behaviors are verbalized as question-answering contexts — a task
description, the behavior's texts, a relation-specific question, and a
partial answer ending in "because" plus the list marker "1." trick — the
format the paper found LLMs follow most reliably.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.relations import SEED_RELATIONS

__all__ = ["BehaviorPrompt", "cobuy_prompt", "searchbuy_prompt"]

# Relation-specific question suffixes appended to the base question.
_SEED_QUESTIONS: dict[str, str] = {
    "usedFor": "What can the product be used for?",
    "capableOf": "What is the product capable of?",
    "isA": "What type of product is it?",
    "cause": "What does the customer want or need?",
}


@dataclass(frozen=True)
class BehaviorPrompt:
    """A structured prompt plus the provenance needed downstream.

    ``product_ids`` preserves the behavior's head products (one for
    search-buy, two for co-buy); ``intent_id`` is the simulator's hidden
    ground truth forwarded to the teacher's oracle channel (None for
    noise behaviors).
    """

    behavior: str  # "co-buy" | "search-buy"
    domain: str
    head_text: str  # "query ||| title" or "title_a ||| title_b"
    product_ids: tuple[str, ...]
    query_id: str | None
    seed_relation: str | None
    intent_id: str | None
    prompt_text: str

    def render(self) -> str:
        return self.prompt_text


def _question(seed_relation: str | None) -> str:
    if seed_relation is None:
        return "Why did the customer make this purchase?"
    if seed_relation not in SEED_RELATIONS:
        raise ValueError(f"unknown seed relation {seed_relation!r}; valid: {SEED_RELATIONS}")
    return _SEED_QUESTIONS[seed_relation]


def cobuy_prompt(
    title_a: str,
    title_b: str,
    domain: str,
    product_ids: tuple[str, str],
    seed_relation: str | None = None,
    intent_id: str | None = None,
) -> BehaviorPrompt:
    """Figure 3-style prompt for a co-purchase pair."""
    text = (
        "The following two products were purchased together on an online "
        f"shopping website, in the {domain} category.\n"
        f"Product 1: {title_a}\n"
        f"Product 2: {title_b}\n"
        f"Question: {_question(seed_relation)}\n"
        "Answer: The customer bought them together because\n1."
    )
    return BehaviorPrompt(
        behavior="co-buy",
        domain=domain,
        head_text=f"{title_a} ||| {title_b}",
        product_ids=product_ids,
        query_id=None,
        seed_relation=seed_relation,
        intent_id=intent_id,
        prompt_text=text,
    )


def searchbuy_prompt(
    query_text: str,
    title: str,
    domain: str,
    product_id: str,
    query_id: str,
    seed_relation: str | None = None,
    intent_id: str | None = None,
) -> BehaviorPrompt:
    """Figure 3-style prompt for a search-buy pair."""
    text = (
        "The following search query caused the following product purchase "
        f"on an online shopping website, in the {domain} category.\n"
        f"Search query: {query_text}\n"
        f"Product: {title}\n"
        f"Question: {_question(seed_relation)}\n"
        "Answer: The customer searched and bought it because\n1."
    )
    return BehaviorPrompt(
        behavior="search-buy",
        domain=domain,
        head_text=f"{query_text} ||| {title}",
        product_ids=(product_id,),
        query_id=query_id,
        seed_relation=seed_relation,
        intent_id=intent_id,
        prompt_text=text,
    )
