"""Critic classifiers populating human judgments at scale (§3.3.2).

The paper finetunes DeBERTa-large on the ~30k annotations and scores all
candidates, keeping those with plausibility > 0.5.  Here the critic is an
MLP over embedding features of the behavior context and the knowledge
tail, trained on the simulated annotations, with the same role and the
same 0.5 keep-threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.annotation.schema import AnnotationResult
from repro.core.relations import Relation
from repro.core.triples import KnowledgeCandidate
from repro.embeddings.encoder import TextEncoder
from repro.nn import MLP, Adam, Tensor, binary_cross_entropy_with_logits, no_grad
from repro.utils.rng import spawn_rng
from repro.utils.textproc import tokenize_words

__all__ = ["CriticConfig", "CriticClassifier"]

_RELATIONS = list(Relation)


@dataclass(frozen=True)
class CriticConfig:
    """Training hyperparameters for the critic."""

    hidden: int = 64
    epochs: int = 30
    batch_size: int = 64
    lr: float = 3e-3
    keep_threshold: float = 0.5


class CriticClassifier:
    """Joint plausibility/typicality scorer for knowledge candidates."""

    def __init__(
        self,
        encoder: TextEncoder,
        config: CriticConfig | None = None,
        seed: int = 0,
    ):
        self.encoder = encoder
        self.config = config or CriticConfig()
        rng = spawn_rng(seed, "critic")
        # Head parts are embedded separately (query vs product, or the two
        # co-bought products) so the critic can see whether the tail
        # relates to *both* sides — the signal separating typical from
        # one-sided knowledge.
        feature_dim = encoder.dim * 3 + 4 + len(_RELATIONS)
        self.model = MLP([feature_dim, self.config.hidden, 2], rng)
        self._train_rng = spawn_rng(seed, "critic-train")
        self._fitted = False

    # ------------------------------------------------------------------
    def featurize(self, candidate: KnowledgeCandidate) -> np.ndarray:
        """Embedding + lexical features for one candidate."""
        parts = candidate.sample.head_text.split(" ||| ")
        part_a = self.encoder.encode(parts[0])
        part_b = self.encoder.encode(parts[-1])
        tail = candidate.tail or candidate.text
        tail_vec = self.encoder.encode(tail)
        cos_a = float(part_a @ tail_vec)
        cos_b = float(part_b @ tail_vec)
        tail_len = min(len(tokenize_words(tail)) / 10.0, 1.0)
        relation_onehot = np.zeros(len(_RELATIONS))
        if candidate.relation is not None:
            relation_onehot[_RELATIONS.index(candidate.relation)] = 1.0
        return np.concatenate(
            [part_a, part_b, tail_vec,
             [cos_a, cos_b, min(cos_a, cos_b), tail_len],
             relation_onehot]
        )

    def _features(self, candidates: list[KnowledgeCandidate]) -> np.ndarray:
        return np.stack([self.featurize(c) for c in candidates])

    # ------------------------------------------------------------------
    def fit(
        self,
        candidates: list[KnowledgeCandidate],
        annotations: list[AnnotationResult],
    ) -> list[float]:
        """Train on annotated candidates; returns per-epoch losses."""
        if len(candidates) != len(annotations):
            raise ValueError("candidates and annotations must align")
        features = self._features(candidates)
        labels = np.array(
            [[float(a.plausible), float(a.typical)] for a in annotations]
        )
        optimizer = Adam(self.model.parameters(), lr=self.config.lr)
        losses: list[float] = []
        self.model.train()
        for _ in range(self.config.epochs):
            order = self._train_rng.permutation(len(candidates))
            epoch_loss, batches = 0.0, 0
            for start in range(0, len(order), self.config.batch_size):
                batch = order[start : start + self.config.batch_size]
                logits = self.model(Tensor(features[batch]))
                loss = binary_cross_entropy_with_logits(logits, labels[batch])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        self.model.eval()
        self._fitted = True
        return losses

    # ------------------------------------------------------------------
    def score(self, candidates: list[KnowledgeCandidate]) -> np.ndarray:
        """(n, 2) array of [plausibility, typicality] probabilities."""
        if not self._fitted:
            raise RuntimeError("critic must be fit before scoring")
        if not candidates:
            return np.zeros((0, 2))
        with no_grad():
            logits = self.model(Tensor(self._features(candidates))).numpy()
        return 1.0 / (1.0 + np.exp(-logits))

    def populate(self, candidates: list[KnowledgeCandidate]) -> list[KnowledgeCandidate]:
        """Attach scores in place; returns candidates above threshold."""
        scores = self.score(candidates)
        kept: list[KnowledgeCandidate] = []
        for candidate, (plausibility, typicality) in zip(candidates, scores):
            candidate.plausibility_score = float(plausibility)
            candidate.typicality_score = float(typicality)
            if plausibility > self.config.keep_threshold:
                kept.append(candidate)
        return kept

    def accuracy(
        self,
        candidates: list[KnowledgeCandidate],
        annotations: list[AnnotationResult],
    ) -> dict[str, float]:
        """Held-out accuracy for both heads."""
        scores = self.score(candidates)
        plaus_true = np.array([a.plausible for a in annotations])
        typ_true = np.array([a.typical for a in annotations])
        return {
            "plausibility": float(((scores[:, 0] > 0.5) == plaus_true).mean()),
            "typicality": float(((scores[:, 1] > 0.5) == typ_true).mean()),
        }
