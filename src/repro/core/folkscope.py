"""FolkScope baseline (Yu et al. 2023) — the system COSMO extends.

The paper positions COSMO against FolkScope (§2, Table 1): FolkScope
distills intention knowledge from an LLM for **co-buy pairs only**, in
**two domains**, keeps the raw ConceptNet-style relations, and serves
knowledge by running the full *teacher + critic* pipeline per behavior —
no instruction-tuned student, so inference cost stays at LLM scale.

This module implements that pipeline faithfully as a comparison baseline
so the COSMO-vs-FolkScope bench can measure what each extension buys:
domain/behavior coverage, relation taxonomy, and serving cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.annotation.annotators import AnnotatorPool
from repro.behavior.cobuy import simulate_cobuy
from repro.behavior.world import World, WorldConfig
from repro.core.critic import CriticClassifier, CriticConfig
from repro.core.filtering import FilterConfig, KnowledgeFilter
from repro.core.generation import generate_candidates
from repro.core.kg import KnowledgeGraph
from repro.core.pipeline import CosmoPipeline
from repro.core.sampling import SamplingConfig, sample_cobuy, sample_products
from repro.core.triples import KnowledgeCandidate, KnowledgeTriple
from repro.embeddings.encoder import TextEncoder
from repro.llm.interface import LatencyModel
from repro.llm.teacher import TeacherLLM

__all__ = ["FolkScopeConfig", "FolkScopeResult", "FolkScopePipeline"]

# FolkScope covers two domains (clothing and electronics in the paper).
FOLKSCOPE_DOMAINS: tuple[str, str] = ("Clothing, Shoes & Jewelry", "Electronics")


@dataclass(frozen=True)
class FolkScopeConfig:
    """Scale knobs for the baseline pipeline."""

    seed: int = 0
    world: WorldConfig = field(default_factory=WorldConfig)
    cobuy_pairs_per_domain: int = 120
    candidates_per_sample: int = 3
    annotation_budget: int = 600
    critic: CriticConfig = field(default_factory=CriticConfig)
    filter: FilterConfig = field(default_factory=FilterConfig)


@dataclass
class FolkScopeResult:
    """Artifacts of one FolkScope run."""

    config: FolkScopeConfig
    world: World
    kg: KnowledgeGraph
    candidates: list[KnowledgeCandidate]
    annotated: int
    teacher_latency: LatencyModel

    def serving_cost_per_behavior(self) -> float:
        """Simulated seconds of LLM inference per behavior served.

        FolkScope has no student: serving a *new* behavior requires a
        fresh teacher generation (plus critic scoring, which is cheap),
        so the cost is the teacher's per-candidate latency.
        """
        if not self.candidates:
            return 0.0
        return self.teacher_latency.total_simulated_s / len(self.candidates)


class FolkScopePipeline:
    """Teacher + critic pipeline over co-buy pairs in two domains."""

    def __init__(self, config: FolkScopeConfig | None = None):
        self.config = config or FolkScopeConfig()

    def run(self, world: World | None = None) -> FolkScopeResult:
        """Execute the baseline; optionally reuse an existing world."""
        cfg = self.config
        world = world or World(cfg.world)
        teacher_latency = LatencyModel()

        cobuy = simulate_cobuy(world, pairs_per_domain=cfg.cobuy_pairs_per_domain,
                               seed=cfg.seed)
        # Restrict to FolkScope's two domains and co-buy only.
        selected = sample_products(world, cobuy, _EmptySearchLog(), 0.8)
        samples = [
            s for s in sample_cobuy(world, cobuy, selected, SamplingConfig())
            if s.domain in FOLKSCOPE_DOMAINS
        ]
        teacher = TeacherLLM(world, latency=teacher_latency, seed=cfg.seed)
        candidates = generate_candidates(
            world, teacher, samples,
            candidates_per_sample=cfg.candidates_per_sample, seed=cfg.seed,
        )
        encoder = TextEncoder(seed=cfg.seed)
        filtered, _ = KnowledgeFilter(encoder, config=cfg.filter).apply(candidates)

        annotated = filtered[: cfg.annotation_budget]
        annotations = AnnotatorPool(seed=cfg.seed).annotate_batch(
            [(c.candidate_id, c.truth.quality) for c in annotated]
        )
        critic = CriticClassifier(encoder, config=cfg.critic, seed=cfg.seed)
        critic.fit(annotated, annotations)
        kept = critic.populate(filtered)

        kg = KnowledgeGraph()
        kg.extend(
            KnowledgeTriple(
                head=c.sample.head_text,
                relation=c.relation,
                tail=c.tail,
                domain=c.sample.domain,
                behavior=c.sample.behavior,
                plausibility=c.plausibility_score or 0.0,
                typicality=c.typicality_score or 0.0,
                head_ids=c.sample.product_ids,
            )
            for c in kept
        )
        return FolkScopeResult(
            config=cfg,
            world=world,
            kg=kg,
            candidates=candidates,
            annotated=len(annotated),
            teacher_latency=teacher_latency,
        )


class _EmptySearchLog:
    """Null search-buy log: FolkScope ignores search behaviors."""

    records: list = []

    def product_degree(self, product_id: str) -> int:
        return 0

    def query_engagement(self, query_id: str) -> tuple[int, int]:
        return 0, 0

    def purchase_rate(self, query_id: str) -> float:
        return 0.0
