"""cosmolint command line.

Usage::

    python -m repro.lint src benchmarks examples
    python -m repro.lint --format json src
    python -m repro.lint --sarif src          # SARIF 2.1.0 to stdout
    python -m repro.lint --fix src            # apply mechanical autofixes
    python -m repro.lint --no-cache src       # force a cold analysis
    python -m repro.lint --write-baseline src # accept current diagnostics
    python -m repro.lint --list-rules
    python -m repro.cli lint src benchmarks examples
    cosmolint src benchmarks examples         # console-script entry point

The incremental cache (default ``.cosmolint-cache.json``) replays
unchanged files by content hash; ``--cache-stats`` prints hit/miss
counts to *stderr* so reports on stdout stay byte-identical between
cold and warm runs.  A checked-in ``lint-baseline.json`` (auto-loaded
from the working directory, or ``--baseline PATH``) filters known,
accepted diagnostics, so the exit code flags only *new* violations.

Exit codes: 0 — clean, 1 — diagnostics reported, 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.autofix import fix_paths
from repro.lint.baseline import Baseline
from repro.lint.cache import AnalysisCache
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules, rule_ids
from repro.lint.reporters import format_json, format_rule_listing, format_text
from repro.lint.sarif import format_sarif

__all__ = ["build_parser", "main", "DEFAULT_CACHE", "DEFAULT_BASELINE"]

DEFAULT_CACHE = ".cosmolint-cache.json"
DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="cosmolint: enforce the repo's determinism and serving contracts",
    )
    parser.add_argument("paths", nargs="*", default=["src", "benchmarks", "examples"],
                        help="files or directories to lint (default: src benchmarks examples)")
    parser.add_argument("--format", choices=("text", "json", "sarif"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--sarif", action="store_const", const="sarif", dest="format",
                        help="shorthand for --format sarif")
    parser.add_argument("--select", default="",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--ignore", default="",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical autofixes (mutable-default, "
                             "float-equality) before linting")
    parser.add_argument("--cache", default=DEFAULT_CACHE, metavar="PATH",
                        help=f"incremental analysis cache file (default: {DEFAULT_CACHE})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental cache (force cold analysis)")
    parser.add_argument("--cache-stats", action="store_true",
                        help="print cache hit/miss counts to stderr")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="accepted-diagnostics file (default: "
                             f"{DEFAULT_BASELINE} when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current diagnostics to the baseline file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule set and exit")
    return parser


def _parse_rule_set(raw: str, parser: argparse.ArgumentParser) -> set[str] | None:
    names = {part.strip() for part in raw.split(",") if part.strip()}
    if not names:
        return None
    unknown = names - set(rule_ids())
    if unknown:
        parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return names


def _resolve_baseline(args: argparse.Namespace,
                      parser: argparse.ArgumentParser) -> Baseline | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        try:
            return Baseline.load(args.baseline)
        except FileNotFoundError:
            parser.error(f"baseline file not found: {args.baseline}")
        except ValueError as error:
            parser.error(str(error))
    if Path(DEFAULT_BASELINE).exists():
        return Baseline.load(DEFAULT_BASELINE)
    return None


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(format_rule_listing())
        return 0
    select = _parse_rule_set(args.select, parser)
    ignore = _parse_rule_set(args.ignore, parser)

    if args.fix:
        try:
            fix_report = fix_paths(args.paths, select=select)
        except FileNotFoundError as error:
            print(f"error: {error}")
            return 2
        print(f"fixed {fix_report.fixes} finding(s) in "
              f"{fix_report.files_changed} file(s)", file=sys.stderr)

    cache = None
    if not args.no_cache:
        file_rule_ids = [cls.id for cls in all_rules() if cls.scope == "file"
                         and (select is None or cls.id in select)
                         and (ignore is None or cls.id not in ignore)]
        cache = AnalysisCache(args.cache, file_rule_ids)
    baseline = None if args.write_baseline else _resolve_baseline(args, parser)

    try:
        result = lint_paths(args.paths, select=select, ignore=ignore,
                            cache=cache, baseline=baseline)
    except FileNotFoundError as error:
        print(f"error: {error}")
        return 2

    if args.cache_stats and cache is not None:
        print(f"cosmolint cache: {result.cache_hits} hit(s), "
              f"{result.cache_misses} miss(es) ({args.cache})", file=sys.stderr)

    if args.write_baseline:
        target = args.baseline if args.baseline is not None else DEFAULT_BASELINE
        count = Baseline.write(target, result.diagnostics)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {target}", file=sys.stderr)
        return 0

    formatter = {"json": format_json, "sarif": format_sarif}.get(args.format)
    if formatter is not None:
        print(formatter(result))
    else:
        print(format_text(result))
    return 0 if result.ok else 1
