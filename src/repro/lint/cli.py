"""cosmolint command line.

Usage::

    python -m repro.lint src benchmarks examples
    python -m repro.lint --format json src
    python -m repro.lint --list-rules
    python -m repro.cli lint src benchmarks examples

Exit codes: 0 — clean, 1 — diagnostics reported, 2 — usage error.
"""

from __future__ import annotations

import argparse

from repro.lint.engine import lint_paths
from repro.lint.registry import rule_ids
from repro.lint.reporters import format_json, format_rule_listing, format_text

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="cosmolint: enforce the repo's determinism and serving contracts",
    )
    parser.add_argument("paths", nargs="*", default=["src", "benchmarks", "examples"],
                        help="files or directories to lint (default: src benchmarks examples)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", default="",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--ignore", default="",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule set and exit")
    return parser


def _parse_rule_set(raw: str, parser: argparse.ArgumentParser) -> set[str] | None:
    names = {part.strip() for part in raw.split(",") if part.strip()}
    if not names:
        return None
    unknown = names - set(rule_ids())
    if unknown:
        parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return names


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(format_rule_listing())
        return 0
    select = _parse_rule_set(args.select, parser)
    ignore = _parse_rule_set(args.ignore, parser)
    try:
        result = lint_paths(args.paths, select=select, ignore=ignore)
    except FileNotFoundError as error:
        print(f"error: {error}")
        return 2
    formatter = format_json if args.format == "json" else format_text
    print(formatter(result))
    return 0 if result.ok else 1
