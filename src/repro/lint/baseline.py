"""Checked-in baseline of accepted diagnostics.

``lint-baseline.json`` records the *known, deliberately accepted*
violations of the cross-module contracts (e.g. ``core.pipeline``'s
sanctioned imports of ``repro.obs``).  Diagnostics matching a baseline
entry are filtered out of the report (and counted), so the exit code
only reflects *new* violations — CI fails the moment an unbaselined
diagnostic appears, while the baseline file itself stays an auditable
artifact under review like any other source change.

Entries match on ``(rule, path, line)``; an edit that moves a baselined
import re-surfaces it, forcing a fresh fix-or-rebaseline decision.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.diagnostics import Diagnostic

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


class Baseline:
    """An accepted-diagnostics set loaded from / written to JSON."""

    def __init__(self, entries: set[tuple[str, str, int]] | None = None):
        self.entries = entries if entries is not None else set()

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version in {path}: {payload.get('version')!r}"
            )
        entries = {
            (entry["rule"], entry["path"], int(entry["line"]))
            for entry in payload["entries"]
        }
        return cls(entries)

    def matches(self, diagnostic: Diagnostic) -> bool:
        return (diagnostic.rule, _posix(diagnostic.path), diagnostic.line) in self.entries

    @staticmethod
    def write(path: str | Path, diagnostics: list[Diagnostic]) -> int:
        """Write ``diagnostics`` as the new baseline; returns entry count."""
        records = sorted(
            {(_posix(d.path), d.line, d.rule, d.message) for d in diagnostics}
        )
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {"rule": rule, "path": diag_path, "line": line, "message": message}
                for diag_path, line, rule, message in records
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return len(records)


def _posix(path: str) -> str:
    return path.replace("\\", "/")
