"""Rule framework: file context, visitor base class and the registry.

Every rule is an :class:`ast.NodeVisitor` subclass decorated with
:func:`register`.  Rules declare a stable ``id`` (used in reporter
output and suppression comments), a one-line ``summary`` and the
``invariant`` they guard; ``applies_to`` scopes a rule to part of the
tree (e.g. wall-clock checks only run under ``serving/`` and
``benchmarks/``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Iterator

from repro.lint.diagnostics import Diagnostic

__all__ = [
    "FileContext",
    "LintRule",
    "register",
    "all_rules",
    "get_rule",
    "rule_ids",
    "make_filter",
]


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about the file being linted."""

    display_path: str
    source: str
    in_package: bool = False
    parts: tuple[str, ...] = field(default_factory=tuple)
    # For __init__.py: names of sibling modules/subpackages, which are
    # legitimate __all__ entries even when never imported in the module.
    sibling_modules: tuple[str, ...] = field(default_factory=tuple)

    @property
    def module_name(self) -> str:
        name = self.parts[-1] if self.parts else self.display_path
        return name[:-3] if name.endswith(".py") else name


class LintRule(ast.NodeVisitor):
    """Base class for cosmolint rules (one instance per file per rule)."""

    id: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    invariant: ClassVar[str] = ""

    def __init__(self, context: FileContext):
        self.context = context
        self.diagnostics: list[Diagnostic] = []

    @classmethod
    def applies_to(cls, context: FileContext) -> bool:
        """Whether this rule runs on ``context``'s file (default: all)."""
        return True

    def check(self, tree: ast.Module) -> list[Diagnostic]:
        """Run the rule over a parsed module and return its diagnostics."""
        self.visit(tree)
        return self.diagnostics

    def report(self, node: ast.AST, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule=self.id,
                path=self.context.display_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )


_REGISTRY: dict[str, type[LintRule]] = {}


def register(rule_class: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> Iterator[type[LintRule]]:
    """Registered rule classes, ordered by rule id."""
    for rule_id in sorted(_REGISTRY):
        yield _REGISTRY[rule_id]


def get_rule(rule_id: str) -> type[LintRule]:
    return _REGISTRY[rule_id]


def rule_ids() -> list[str]:
    return sorted(_REGISTRY)


def make_filter(
    select: set[str] | None, ignore: set[str] | None
) -> Callable[[type[LintRule]], bool]:
    """Predicate implementing ``--select`` / ``--ignore`` semantics."""

    def keep(rule_class: type[LintRule]) -> bool:
        if select is not None and rule_class.id not in select:
            return False
        if ignore is not None and rule_class.id in ignore:
            return False
        return True

    return keep
