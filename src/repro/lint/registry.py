"""Rule framework: file context, rule base classes and the registry.

Rules come in two scopes.  *File* rules are :class:`ast.NodeVisitor`
subclasses run once per file; *project* rules subclass
:class:`ProjectRule` and run once per lint invocation over the
whole-program :class:`~repro.lint.project.ProjectContext` (import
graph + symbol table), which is how cross-module contracts — layering,
RNG provenance, clock/registry injection — are checked.  Both kinds are
decorated with :func:`register` and share one id namespace, so
``--select`` / ``--ignore`` and suppression comments treat them
uniformly.  Rules declare a stable ``id`` (used in reporter output and
suppression comments), a one-line ``summary``, the ``invariant`` they
guard, and whether ``--fix`` can repair them (``autofixable``);
``applies_to`` scopes a file rule to part of the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, ClassVar, Iterator

from repro.lint.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (project imports registry)
    from repro.lint.project import ProjectContext

__all__ = [
    "FileContext",
    "LintRule",
    "ProjectRule",
    "register",
    "all_rules",
    "file_rules",
    "project_rules",
    "get_rule",
    "rule_ids",
    "make_filter",
]


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about the file being linted."""

    display_path: str
    source: str
    in_package: bool = False
    parts: tuple[str, ...] = field(default_factory=tuple)
    # For __init__.py: names of sibling modules/subpackages, which are
    # legitimate __all__ entries even when never imported in the module.
    sibling_modules: tuple[str, ...] = field(default_factory=tuple)

    @property
    def module_name(self) -> str:
        name = self.parts[-1] if self.parts else self.display_path
        return name[:-3] if name.endswith(".py") else name


class LintRule(ast.NodeVisitor):
    """Base class for file-scope cosmolint rules (one instance per file)."""

    id: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    invariant: ClassVar[str] = ""
    #: ``"file"`` rules visit one module's AST; ``"project"`` rules see the
    #: whole-program context (set by :class:`ProjectRule`).
    scope: ClassVar[str] = "file"
    #: Whether ``--fix`` (repro.lint.autofix) can mechanically repair
    #: this rule's findings.
    autofixable: ClassVar[bool] = False

    def __init__(self, context: FileContext):
        self.context = context
        self.diagnostics: list[Diagnostic] = []

    @classmethod
    def applies_to(cls, context: FileContext) -> bool:
        """Whether this rule runs on ``context``'s file (default: all)."""
        return True

    def check(self, tree: ast.Module) -> list[Diagnostic]:
        """Run the rule over a parsed module and return its diagnostics."""
        self.visit(tree)
        return self.diagnostics

    def report(self, node: ast.AST, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule=self.id,
                path=self.context.display_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )


class ProjectRule:
    """Base class for whole-program rules (one instance per lint run).

    A project rule never touches raw ASTs: it consumes the
    :class:`~repro.lint.project.ProjectContext` built from per-module
    summaries, which is what lets the incremental cache replay unchanged
    files without re-parsing while cross-module rules still see the
    complete picture.
    """

    id: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    invariant: ClassVar[str] = ""
    scope: ClassVar[str] = "project"
    autofixable: ClassVar[bool] = False

    def __init__(self) -> None:
        self.diagnostics: list[Diagnostic] = []

    def check(self, project: "ProjectContext") -> list[Diagnostic]:
        """Run the rule over the whole program and return its diagnostics."""
        raise NotImplementedError

    def report(self, path: str, line: int, col: int, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(rule=self.id, path=path, line=line, col=col, message=message)
        )


RuleClass = type[LintRule] | type[ProjectRule]

_REGISTRY: dict[str, RuleClass] = {}


def register(rule_class: RuleClass) -> RuleClass:
    """Class decorator adding a rule (either scope) to the global registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> Iterator[RuleClass]:
    """Registered rule classes (both scopes), ordered by rule id."""
    for rule_id in sorted(_REGISTRY):
        yield _REGISTRY[rule_id]


def file_rules() -> Iterator[type[LintRule]]:
    """File-scope rule classes, ordered by rule id."""
    for rule_class in all_rules():
        if rule_class.scope == "file":
            yield rule_class  # type: ignore[misc]


def project_rules() -> Iterator[type[ProjectRule]]:
    """Project-scope rule classes, ordered by rule id."""
    for rule_class in all_rules():
        if rule_class.scope == "project":
            yield rule_class  # type: ignore[misc]


def get_rule(rule_id: str) -> RuleClass:
    return _REGISTRY[rule_id]


def rule_ids() -> list[str]:
    return sorted(_REGISTRY)


def make_filter(
    select: set[str] | None, ignore: set[str] | None
) -> Callable[[RuleClass], bool]:
    """Predicate implementing ``--select`` / ``--ignore`` semantics."""

    def keep(rule_class: RuleClass) -> bool:
        if select is not None and rule_class.id not in select:
            return False
        if ignore is not None and rule_class.id in ignore:
            return False
        return True

    return keep
