"""The cosmolint rule set: the repo's determinism and serving contracts.

Each rule encodes an invariant the reproduction's regression numbers or
serving benches rely on; DESIGN.md ("Static invariants") documents the
mapping.  Rules are scoped by path where the contract is local (float
equality only matters in metrics code) or carry an explicit allowlist
(wall-clock time is banned repo-wide except ``obs/timebase.py``).
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ImportMap
from repro.lint.registry import FileContext, LintRule, register

__all__ = [
    "ImportMap",
    "UnscopedRngRule",
    "WallClockRule",
    "MutableDefaultRule",
    "OverbroadExceptRule",
    "FloatEqualityRule",
    "BatchEntrypointOnlyRule",
    "AllConsistencyRule",
    "EventLogOnlyRule",
    "SnapshotBuilderOnlyRule",
    "SnapshotHealthGateRule",
    "TraceIdContractRule",
]


@register
class UnscopedRngRule(LintRule):
    """Ban RNG streams that bypass ``repro.utils.rng.spawn_rng``.

    Direct ``np.random.*`` / ``random.*`` / ``default_rng`` calls couple
    a component's stream to global state or to a raw seed, so adding any
    new draw perturbs every downstream stream — exactly what the
    seed+scope discipline exists to prevent.  ``utils/rng.py`` itself is
    exempt (it is the one sanctioned wrapper).
    """

    id = "unscoped-rng"
    summary = "RNG must come from spawn_rng/RngFactory, never raw numpy/stdlib streams"
    invariant = "bit-stable regression numbers for Tables 1/3/6"

    @classmethod
    def applies_to(cls, context: FileContext) -> bool:
        return context.parts[-2:] != ("utils", "rng.py")

    def check(self, tree: ast.Module) -> list[Diagnostic]:
        self._imports = ImportMap(tree)
        return super().check(tree)

    def visit_Call(self, node: ast.Call) -> None:
        name = self._imports.resolve(node.func)
        if name is not None:
            if name.startswith("numpy.random."):
                self.report(
                    node,
                    f"call to {name} bypasses the seed+scope discipline; "
                    "derive streams via repro.utils.rng.spawn_rng(seed, scope=...)",
                )
            elif name == "random" or name.startswith("random."):
                self.report(
                    node,
                    f"stdlib {name} draws from hidden global state; "
                    "use repro.utils.rng.spawn_rng(seed, scope=...) instead",
                )
        self.generic_visit(node)


@register
class WallClockRule(LintRule):
    """Ban wall-clock time everywhere except the sanctioned timebase.

    The serving layer (§3.5, Figure 5) runs entirely on simulated
    :class:`~repro.serving.clock.SimClock` time and the pipeline on
    simulated LLM seconds, so traces, chaos scenarios and latency
    benches are deterministic and never sleep for real.  Real elapsed-
    time profiling flows through one narrow waist —
    :mod:`repro.obs.timebase`, the sole ``allowlist`` entry — and a
    wall-clock call anywhere else is an error.
    """

    id = "wall-clock"
    summary = "use simulated clocks; wall-clock calls only in obs/timebase.py"
    invariant = "deterministic, sleep-free pipeline, serving and chaos benches"

    #: ``/``-separated path suffixes where wall-clock calls are permitted.
    allowlist: ClassVar[tuple[str, ...]] = ("obs/timebase.py",)

    _BANNED = {
        "time.time",
        "time.time_ns",
        "time.sleep",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    @classmethod
    def applies_to(cls, context: FileContext) -> bool:
        for entry in cls.allowlist:
            suffix = tuple(entry.split("/"))
            if context.parts[-len(suffix):] == suffix:
                return False
        return True

    def check(self, tree: ast.Module) -> list[Diagnostic]:
        self._imports = ImportMap(tree)
        return super().check(tree)

    def visit_Call(self, node: ast.Call) -> None:
        name = self._imports.resolve(node.func)
        if name in self._BANNED:
            self.report(
                node,
                f"call to {name} reads the wall clock; time must come from a "
                "simulated clock (only obs/timebase.py may read real time)",
            )
        self.generic_visit(node)


@register
class MutableDefaultRule(LintRule):
    """Ban mutable default argument values.

    A list/dict/set default is created once at definition time and
    shared across calls — state leaks between requests and between
    pipeline stages.
    """

    id = "mutable-default"
    summary = "no mutable default argument values"
    invariant = "no state shared across calls through default arguments"
    autofixable = True

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}
    _MUTABLE_LITERALS = (
        ast.List,
        ast.Dict,
        ast.Set,
        ast.ListComp,
        ast.DictComp,
        ast.SetComp,
    )

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(default, self._MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self._MUTABLE_CALLS
            )
            if mutable:
                self.report(
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None (or use dataclasses.field(default_factory=...))",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


@register
class OverbroadExceptRule(LintRule):
    """Ban bare ``except:`` and swallowing ``except Exception:``.

    The resilience layer depends on typed fault classes propagating to
    the retry/breaker machinery; a broad handler that does not re-raise
    silently converts faults into wrong answers.  ``except Exception``
    is allowed when the handler re-raises.
    """

    id = "overbroad-except"
    summary = "no bare except; except Exception/BaseException must re-raise"
    invariant = "typed faults reach the retry/circuit-breaker machinery"

    _BROAD = {"Exception", "BaseException"}

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(child, ast.Raise) for child in ast.walk(handler))

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except catches everything including KeyboardInterrupt; "
                "catch the specific fault types instead",
            )
        elif (
            isinstance(node.type, ast.Name)
            and node.type.id in self._BROAD
            and not self._reraises(node)
        ):
            self.report(
                node,
                f"except {node.type.id} without re-raise swallows faults the "
                "resilience layer needs to see; narrow it or re-raise",
            )
        self.generic_visit(node)


@register
class FloatEqualityRule(LintRule):
    """Ban ``==`` / ``!=`` against float literals in metrics code.

    Metric computations accumulate rounding error; exact comparison
    against a float literal silently flips regression thresholds.  Use
    ``math.isclose`` or an explicit tolerance.
    """

    id = "float-equality"
    summary = "metrics code must not compare floats with == / !="
    invariant = "metric thresholds stable under floating-point rounding"
    autofixable = True

    @classmethod
    def applies_to(cls, context: FileContext) -> bool:
        filename = context.parts[-1] if context.parts else context.display_path
        return (
            filename == "metrics.py"
            or "metrics" in context.parts[:-1]
            or "reporting" in context.parts[:-1]
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, right in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if any(
                isinstance(operand, ast.Constant) and isinstance(operand.value, float)
                for operand in operands
            ):
                self.report(
                    right,
                    "float equality comparison is unstable under rounding; "
                    "use math.isclose or an explicit tolerance",
                )
                break
        self.generic_visit(node)


@register
class EventLogOnlyRule(LintRule):
    """Serving/cluster modules must publish lifecycle state through the
    structured event log, never ad-hoc stdout writes.

    The monitoring pipeline (DESIGN.md §11) correlates alerts with
    :class:`~repro.obs.events.EventLog` records; a ``print`` or
    ``sys.stdout.write`` in the serving tree is operational information
    that bypasses that contract (and pollutes byte-compared CLI output).
    Emit an event — or, for genuinely human-only output, add the file to
    ``allowlist`` the way ``wall-clock`` allowlists ``obs/timebase.py``.
    """

    id = "event-log-only"
    summary = "serving modules publish lifecycle via EventLog, not prints"
    invariant = "alerts can cross-reference every operational transition"

    #: ``/``-separated path suffixes where direct stdout writes are
    #: permitted (none today; CLI/reporting trees are out of scope).
    allowlist: ClassVar[tuple[str, ...]] = ()

    _STREAM_WRITES = {
        "sys.stdout.write",
        "sys.stderr.write",
        "sys.stdout.writelines",
        "sys.stderr.writelines",
    }

    @classmethod
    def applies_to(cls, context: FileContext) -> bool:
        if "serving" not in context.parts[:-1]:
            return False
        for entry in cls.allowlist:
            suffix = tuple(entry.split("/"))
            if context.parts[-len(suffix):] == suffix:
                return False
        return True

    def check(self, tree: ast.Module) -> list[Diagnostic]:
        self._imports = ImportMap(tree)
        return super().check(tree)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.report(
                node,
                "print() in a serving module bypasses the structured event "
                "log; emit via obs.events.EventLog so alerts can correlate it",
            )
        else:
            name = self._imports.resolve(node.func)
            if name in self._STREAM_WRITES:
                self.report(
                    node,
                    f"{name} in a serving module bypasses the structured "
                    "event log; emit via obs.events.EventLog instead",
                )
        self.generic_visit(node)


@register
class SnapshotBuilderOnlyRule(LintRule):
    """Knowledge snapshots are built only through the ``repro.refresh``
    builder API, never constructed directly.

    A :class:`~repro.refresh.snapshot.KgSnapshot`'s version id is a
    content checksum; the zero-downtime rollout machinery (DESIGN.md
    §12) trusts that a version names exactly one byte-for-byte content.
    Hand-constructing a snapshot or manifest outside the refresh package
    could attach an arbitrary version to arbitrary content, silently
    breaking version-scoped cache invalidation and rollback.  Call
    :func:`~repro.refresh.snapshot.build_snapshot` (allowed anywhere)
    instead.
    """

    id = "snapshot-builder-only"
    summary = "KgSnapshot/SnapshotManifest built only via repro.refresh's build_snapshot"
    invariant = "a snapshot version names exactly one content (rollout/rollback safety)"

    _GUARDED = ("KgSnapshot", "SnapshotManifest")

    @classmethod
    def applies_to(cls, context: FileContext) -> bool:
        return "refresh" not in context.parts[:-1]

    def check(self, tree: ast.Module) -> list[Diagnostic]:
        self._imports = ImportMap(tree)
        return super().check(tree)

    def visit_Call(self, node: ast.Call) -> None:
        name = self._imports.resolve(node.func)
        if name is not None:
            leaf = name.rsplit(".", 1)[-1]
            if leaf in self._GUARDED and name.startswith("repro."):
                self.report(
                    node,
                    f"direct {leaf} construction bypasses the content-"
                    "addressed builder; create snapshots with "
                    "repro.refresh.build_snapshot so the version id stays "
                    "a trustworthy checksum",
                )
        self.generic_visit(node)


@register
class SnapshotHealthGateRule(LintRule):
    """Rollout controllers must be constructed with a snapshot quality
    gate.

    The SLO guard only sees *serving* damage; a refresh whose knowledge
    drifted — relation mix collapsed, critic scores cratered — serves
    requests perfectly and sails past every alert (DESIGN.md §14).  The
    :class:`~repro.refresh.quality.SnapshotQualityGate` is the guard for
    that failure mode, and it only protects rollouts it is wired into:
    a ``RolloutController(...)`` call without a ``quality_gate=``
    argument (or with an explicit ``quality_gate=None``) ships an
    ungated promotion path.  The refresh package itself is exempt — it
    defines the controller and the gate.
    """

    id = "snapshot-health-gate"
    summary = "RolloutController construction must pass a quality_gate"
    invariant = "no snapshot promotes without a knowledge-drift check (DESIGN.md §14)"

    @classmethod
    def applies_to(cls, context: FileContext) -> bool:
        return "refresh" not in context.parts[:-1]

    def check(self, tree: ast.Module) -> list[Diagnostic]:
        self._imports = ImportMap(tree)
        return super().check(tree)

    def visit_Call(self, node: ast.Call) -> None:
        name = self._imports.resolve(node.func)
        if (name is not None and name.startswith("repro.")
                and name.rsplit(".", 1)[-1] == "RolloutController"):
            gate = next((kw.value for kw in node.keywords
                         if kw.arg == "quality_gate"), None)
            if gate is None and not any(kw.arg is None for kw in node.keywords):
                self.report(
                    node,
                    "RolloutController constructed without a quality_gate; "
                    "pass a repro.refresh.SnapshotQualityGate so drifted "
                    "knowledge is blocked before promotion",
                )
            elif (isinstance(gate, ast.Constant) and gate.value is None):
                self.report(
                    node,
                    "quality_gate=None disables the knowledge-drift guard; "
                    "pass a repro.refresh.SnapshotQualityGate instead",
                )
        self.generic_visit(node)


@register
class TraceIdContractRule(LintRule):
    """Serving modules must not invent ad-hoc trace-id attribute keys on
    spans or events.

    Trace correlation (DESIGN.md §9) works because exactly one attribute
    key — :data:`repro.obs.tracing.TRACE_ID_ATTR` — carries a trace id,
    stamped automatically by :meth:`~repro.obs.tracing.Tracer.attach`
    and :meth:`~repro.obs.events.EventLog.trace_scope`.  A serving
    module writing its own ``trace_id=...`` span/event attribute (or a
    spelling variant like ``traceId``) creates records the
    :class:`~repro.obs.trace_query.TraceAnalyzer`, the exemplar lookup
    and the event correlation all silently miss.  Propagate a
    :class:`~repro.obs.tracing.TraceContext` instead, or reference the
    sanctioned constant (a non-literal key is not flagged).
    """

    id = "trace-id-contract"
    summary = ("trace ids flow via Tracer.attach / EventLog.trace_scope, "
               "never ad-hoc span/event attribute keys")
    invariant = ("one sanctioned trace-id key across spans, events and "
                 "exemplars (trace reassembly and correlation)")

    #: span/event construction entry points whose attribute keys we police.
    _ATTR_METHODS = ("span", "emit", "record", "set_attribute")

    @classmethod
    def applies_to(cls, context: FileContext) -> bool:
        return "serving" in context.parts[:-1]

    @staticmethod
    def _is_trace_id_key(key: str) -> bool:
        normalized = key.lower().replace("_", "").replace("-", "")
        return "traceid" in normalized

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        method = None
        if isinstance(func, ast.Attribute):
            method = func.attr
        elif isinstance(func, ast.Name):
            method = func.id
        if method in self._ATTR_METHODS:
            if method == "set_attribute" and node.args:
                first = node.args[0]
                if (isinstance(first, ast.Constant)
                        and isinstance(first.value, str)
                        and self._is_trace_id_key(first.value)):
                    self.report(
                        node,
                        f"span attribute key {first.value!r} hand-writes a "
                        "trace id; attach a TraceContext (Tracer.attach) or "
                        "use obs.tracing.TRACE_ID_ATTR so analyzers can "
                        "find it",
                    )
            for keyword in node.keywords:
                if keyword.arg is not None and self._is_trace_id_key(keyword.arg):
                    self.report(
                        node,
                        f"ad-hoc trace-id attribute {keyword.arg!r} on "
                        f"{method}(); trace ids flow via Tracer.attach / "
                        "EventLog.trace_scope under the sanctioned "
                        "obs.tracing.TRACE_ID_ATTR key",
                    )
        self.generic_visit(node)


@register
class BatchEntrypointOnlyRule(LintRule):
    """Serving hot paths must call generators through ``generate_batch``,
    never the per-item ``generate``/``generate_knowledge`` surfaces.

    The batch-first serving redesign (DESIGN.md §13) makes one vectorized
    ``generate_batch`` call per flush/window the *only* way serving code
    reaches a generator: per-item calls re-introduce the N-sequential-
    charges cost model that capped a replica near 500 req/s, and they
    bypass the :class:`~repro.llm.interface.GenerationBatch` accounting
    (attempts, retries, breaker refusals) the resilience layer reports.
    ``generate_knowledge`` survives only as a deprecated shim for
    out-of-tree callers — in-tree serving code must not call it.  A file
    that must keep a compatibility call site goes on ``allowlist``.
    """

    id = "batch-entrypoint-only"
    summary = ("serving code calls generators via generate_batch, never "
               "per-item generate/generate_knowledge")
    invariant = ("one amortized generator charge per flush/window "
                 "(the batch-first serving cost model)")

    #: ``/``-separated path suffixes where per-item generator calls are
    #: tolerated (none today; shims *define* generate_knowledge but must
    #: delegate to generate_batch, which this rule permits).
    allowlist: ClassVar[tuple[str, ...]] = ()

    _BANNED_METHODS = ("generate", "generate_knowledge")

    @classmethod
    def applies_to(cls, context: FileContext) -> bool:
        if "serving" not in context.parts[:-1]:
            return False
        for entry in cls.allowlist:
            suffix = tuple(entry.split("/"))
            if context.parts[-len(suffix):] == suffix:
                return False
        return True

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in self._BANNED_METHODS:
            self.report(
                node,
                f"per-item .{func.attr}() call in a serving module; route "
                "generator work through generate_batch() so the flush/window "
                "is charged one amortized batch, not per-item latency",
            )
        self.generic_visit(node)


@register
class AllConsistencyRule(LintRule):
    """``__all__`` must exist in public package modules and list only
    names the module actually defines.

    The serving and pipeline layers re-export through ``__all__``; a
    missing or stale export list turns refactors into silent API
    breaks.  Script trees (``benchmarks/``, ``examples/`` — not package
    members) and docstring-only modules are exempt.
    """

    id = "all-consistency"
    summary = "__all__ present in public modules and every listed name defined"
    invariant = "the public API surface is explicit and importable"

    _EXEMPT_MODULES = {"__main__", "conftest", "setup"}

    def check(self, tree: ast.Module) -> list[Diagnostic]:
        defined, star_import = self._module_names(tree)
        dunder_all = self._find_all(tree)
        if dunder_all is None:
            if self._requires_all(defined):
                self.report(
                    tree.body[0] if tree.body else tree,
                    "public module defines no __all__; declare its export list",
                )
            return self.diagnostics
        names = self._literal_names(dunder_all.value)
        if names is None or star_import:
            return self.diagnostics  # dynamic __all__ or star import: unverifiable
        for name, node in names:
            if name not in defined and name not in self.context.sibling_modules:
                self.report(
                    node,
                    f"__all__ lists {name!r} but the module never defines it",
                )
        return self.diagnostics

    # -- helpers --------------------------------------------------------
    def _requires_all(self, defined: set[str]) -> bool:
        module = self.context.module_name
        if not self.context.in_package:
            return False
        if module in self._EXEMPT_MODULES or module.startswith("test_"):
            return False
        if module.startswith("_") and module != "__init__":
            return False
        return any(not name.startswith("_") for name in defined)

    @staticmethod
    def _find_all(tree: ast.Module) -> ast.Assign | ast.AnnAssign | None:
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        return node
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                    return node
        return None

    @staticmethod
    def _literal_names(value: ast.expr | None) -> list[tuple[str, ast.expr]] | None:
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None
        names: list[tuple[str, ast.expr]] = []
        for element in value.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            names.append((element.value, element))
        return names

    @staticmethod
    def _module_names(tree: ast.Module) -> tuple[set[str], bool]:
        """Top-level bindings, walking into top-level if/try blocks."""
        defined: set[str] = set()
        star_import = False

        def collect_target(target: ast.expr) -> None:
            if isinstance(target, ast.Name):
                defined.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    collect_target(element)
            elif isinstance(target, ast.Starred):
                collect_target(target.value)

        def scan(body: list[ast.stmt]) -> None:
            nonlocal star_import
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    defined.add(node.name)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        collect_target(target)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    collect_target(node.target)
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        defined.add(alias.asname or alias.name.split(".", 1)[0])
                elif isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        if alias.name == "*":
                            star_import = True
                        else:
                            defined.add(alias.asname or alias.name)
                elif isinstance(node, ast.If):
                    scan(node.body)
                    scan(node.orelse)
                elif isinstance(node, ast.Try):
                    scan(node.body)
                    for handler in node.handlers:
                        scan(handler.body)
                    scan(node.orelse)
                    scan(node.finalbody)
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    scan(node.body)
        scan(tree.body)
        return defined, star_import
