"""Whole-program analysis: module summaries, import graph, symbol table.

The project phase parses every file once (or replays a cached
:class:`ModuleSummary` when the content hash is unchanged) and hands the
assembled :class:`ProjectContext` to the project-scope rules.  A summary
is a deliberately small, JSON-serializable extract of one module:

* **imports** — every ``import``/``from`` statement with its source
  location, feeding the layering and cycle rules;
* **symbols** — top-level functions and classes with their parameter
  lists (``__init__`` for classes, field order for dataclasses), the
  cross-module half of the RNG-provenance contract;
* **calls** — call sites whose arguments are provably suspicious
  (constants, resolvable nested calls), matched against remote ``rng``
  parameters at project time;
* **ctors** — construction sites of guarded infrastructure classes
  (``SimClock``, ``MetricsRegistry``) with an ``injected-fallback``
  flag for the sanctioned ``x if x is not None else C()`` idiom;
* **suppressions** — the file's ``# cosmolint: disable`` table, so
  project-level diagnostics honor the same suppression syntax as
  file-level ones.

Because project rules consume summaries only — never raw ASTs — a warm
cached run skips parsing entirely while cross-module analysis still
sees the complete program.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "ImportMap",
    "ImportRecord",
    "SymbolInfo",
    "ArgRecord",
    "CallSite",
    "CtorSite",
    "ModuleSummary",
    "ProjectContext",
    "module_name_for",
    "extract_summary",
    "is_inline_rng_origin",
]


class ImportMap:
    """Alias → canonical dotted module map for one file.

    Resolves names like ``np.random.default_rng`` back to
    ``numpy.random.default_rng`` regardless of how numpy was imported
    (``import numpy``, ``import numpy as np``, ``from numpy import
    random as npr``, ``from numpy.random import default_rng``, ...).
    """

    def __init__(self, tree: ast.Module):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".", 1)[0]
                    # "import a.b" binds "a"; "import a.b as c" binds a.b.
                    self.aliases[name] = alias.name if alias.asname else name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name for an attribute chain, or ``None``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


@dataclass(frozen=True)
class ImportRecord:
    """One ``import`` / ``from ... import`` statement."""

    line: int
    col: int
    target: str  # the module named in the statement
    names: tuple[str, ...] = ()  # imported names ("from" form only)

    def as_dict(self) -> dict[str, Any]:
        return {"line": self.line, "col": self.col, "target": self.target,
                "names": list(self.names)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ImportRecord":
        return cls(payload["line"], payload["col"], payload["target"],
                   tuple(payload["names"]))


@dataclass(frozen=True)
class SymbolInfo:
    """A top-level function or class and its callable parameter list."""

    name: str
    kind: str  # "func" | "class"
    line: int
    params: tuple[str, ...] = ()
    annotations: tuple[str, ...] = ()  # aligned with params; "" when absent
    has_params: bool = True  # False: parameter list unknown (e.g. inherited __init__)

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "line": self.line,
                "params": list(self.params), "annotations": list(self.annotations),
                "has_params": self.has_params}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SymbolInfo":
        return cls(payload["name"], payload["kind"], payload["line"],
                   tuple(payload["params"]), tuple(payload["annotations"]),
                   payload["has_params"])

    def rng_params(self) -> list[tuple[int, str]]:
        """``(index, name)`` of parameters that expect an RNG stream."""
        found = []
        for index, (param, annotation) in enumerate(zip(self.params, self.annotations)):
            if param == "rng" or "Generator" in annotation:
                found.append((index, param))
        return found


@dataclass(frozen=True)
class ArgRecord:
    """One provably-classifiable argument at a call site.

    ``slot`` is the positional index, or ``-1`` with ``keyword`` set.
    ``kind`` is ``"const"`` (non-None literal, ``detail`` its repr) or
    ``"call"`` (nested call, ``detail`` the resolved dotted callee).
    """

    slot: int
    keyword: str
    kind: str
    detail: str
    line: int
    col: int

    def as_dict(self) -> dict[str, Any]:
        return {"slot": self.slot, "keyword": self.keyword, "kind": self.kind,
                "detail": self.detail, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ArgRecord":
        return cls(payload["slot"], payload["keyword"], payload["kind"],
                   payload["detail"], payload["line"], payload["col"])


@dataclass(frozen=True)
class CallSite:
    """A call whose callee resolved to a dotted name, with suspicious args."""

    line: int
    col: int
    callee: str
    args: tuple[ArgRecord, ...]
    positional_reliable: bool  # False when *args makes slots ambiguous

    def as_dict(self) -> dict[str, Any]:
        return {"line": self.line, "col": self.col, "callee": self.callee,
                "args": [arg.as_dict() for arg in self.args],
                "positional_reliable": self.positional_reliable}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CallSite":
        return cls(payload["line"], payload["col"], payload["callee"],
                   tuple(ArgRecord.from_dict(a) for a in payload["args"]),
                   payload["positional_reliable"])


@dataclass(frozen=True)
class CtorSite:
    """A construction site of a guarded infrastructure class."""

    line: int
    col: int
    name: str  # resolved dotted callee, e.g. repro.serving.clock.SimClock
    injected_fallback: bool  # inside `x or C()` / `x if ... else C()`

    def as_dict(self) -> dict[str, Any]:
        return {"line": self.line, "col": self.col, "name": self.name,
                "injected_fallback": self.injected_fallback}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CtorSite":
        return cls(payload["line"], payload["col"], payload["name"],
                   payload["injected_fallback"])


#: Leaf class names whose construction sites are summarized for the
#: injection rules (resolution keeps the full dotted path).
_GUARDED_CTORS = {"SimClock", "MetricsRegistry"}


def is_inline_rng_origin(detail: str) -> bool:
    """Whether a resolved callee creates an RNG outside the seed+scope
    discipline (raw numpy / stdlib streams)."""
    return (
        detail.startswith("numpy.random.")
        or detail == "random"
        or detail.startswith("random.")
    )


@dataclass
class ModuleSummary:
    """Everything the project phase knows about one module."""

    module: str
    path: str
    imports: tuple[ImportRecord, ...] = ()
    symbols: dict[str, SymbolInfo] = field(default_factory=dict)
    exports: dict[str, str] = field(default_factory=dict)  # bound name -> dotted ref
    calls: tuple[CallSite, ...] = ()
    ctors: tuple[CtorSite, ...] = ()
    suppress_file: tuple[str, ...] = ()
    suppress_lines: dict[int, tuple[str, ...]] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        for active in (self.suppress_file, self.suppress_lines.get(line, ())):
            if rule in active or "all" in active:
                return True
        return False

    def as_dict(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "imports": [record.as_dict() for record in self.imports],
            "symbols": {name: info.as_dict() for name, info in sorted(self.symbols.items())},
            "exports": dict(sorted(self.exports.items())),
            "calls": [site.as_dict() for site in self.calls],
            "ctors": [site.as_dict() for site in self.ctors],
            "suppress_file": sorted(self.suppress_file),
            "suppress_lines": {str(line): sorted(rules)
                               for line, rules in sorted(self.suppress_lines.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=payload["module"],
            path=payload["path"],
            imports=tuple(ImportRecord.from_dict(r) for r in payload["imports"]),
            symbols={name: SymbolInfo.from_dict(info)
                     for name, info in payload["symbols"].items()},
            exports=dict(payload["exports"]),
            calls=tuple(CallSite.from_dict(s) for s in payload["calls"]),
            ctors=tuple(CtorSite.from_dict(s) for s in payload["ctors"]),
            suppress_file=tuple(payload["suppress_file"]),
            suppress_lines={int(line): tuple(rules)
                            for line, rules in payload["suppress_lines"].items()},
        )


def module_name_for(path: Path) -> str:
    """Dotted module name from the filesystem package structure.

    Walks up while parent directories are packages (contain an
    ``__init__.py``), so ``src/repro/serving/cluster.py`` names
    ``repro.serving.cluster`` and a standalone ``benchmarks/bench_x.py``
    names ``bench_x``.
    """
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


def _annotation_text(node: ast.expr | None) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):  # pragma: no cover - cosmetic only
        return ""


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef,
                     drop_self: bool = False) -> tuple[tuple[str, ...], tuple[str, ...]]:
    args = [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]
    if drop_self and args and args[0].arg in ("self", "cls"):
        args = args[1:]
    names = tuple(arg.arg for arg in args)
    annotations = tuple(_annotation_text(arg.annotation) for arg in args)
    return names, annotations


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target: ast.expr = decorator
        if isinstance(target, ast.Call):
            target = target.func
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else "")
        if name == "dataclass":
            return True
    return False


def _class_symbol(node: ast.ClassDef) -> SymbolInfo:
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) and item.name == "__init__":
            params, annotations = _function_params(item, drop_self=True)
            return SymbolInfo(node.name, "class", node.lineno, params, annotations)
    if _is_dataclass_decorated(node):
        params = []
        annotations = []
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                if _annotation_text(item.annotation).startswith("ClassVar"):
                    continue
                params.append(item.target.id)
                annotations.append(_annotation_text(item.annotation))
        return SymbolInfo(node.name, "class", node.lineno, tuple(params), tuple(annotations))
    # Inherited or dynamic __init__: parameter list unknown.
    return SymbolInfo(node.name, "class", node.lineno, (), (), has_params=False)


def _is_type_checking(test: ast.expr) -> bool:
    """True for ``TYPE_CHECKING`` / ``typing.TYPE_CHECKING`` guards."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class _SummaryVisitor(ast.NodeVisitor):
    """One pass collecting imports, symbols, call sites and ctor sites."""

    def __init__(self, module: str, imports: ImportMap):
        self.module = module
        self.imports = imports
        self.import_records: list[ImportRecord] = []
        self.calls: list[CallSite] = []
        self.ctors: list[CtorSite] = []
        # Call nodes in injected-fallback position: the non-first operand
        # of an `or`, or either branch of a conditional expression.
        self._fallback_calls: set[ast.Call] = set()

    # -- imports ------------------------------------------------------
    def visit_If(self, node: ast.If) -> None:
        # Imports under `if TYPE_CHECKING:` are erased at runtime, so
        # they create neither layering edges nor real import cycles.
        if _is_type_checking(node.test):
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.import_records.append(
                ImportRecord(node.lineno, node.col_offset + 1, alias.name))
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            names = tuple(alias.name for alias in node.names if alias.name != "*")
            self.import_records.append(
                ImportRecord(node.lineno, node.col_offset + 1, node.module, names))
        self.generic_visit(node)

    # -- fallback-position tracking -----------------------------------
    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        if isinstance(node.op, ast.Or):
            for value in node.values[1:]:
                if isinstance(value, ast.Call):
                    self._fallback_calls.add(value)
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        for value in (node.body, node.orelse):
            if isinstance(value, ast.Call):
                self._fallback_calls.add(value)
        self.generic_visit(node)

    # -- call sites ----------------------------------------------------
    def _resolve_callee(self, func: ast.expr) -> str | None:
        resolved = self.imports.resolve(func)
        if resolved is not None:
            return resolved
        if isinstance(func, ast.Name):
            # Same-module call: qualify with the module's own name so the
            # symbol table lookup works uniformly.
            return f"{self.module}.{func.id}"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        callee = self._resolve_callee(node.func)
        if callee is not None:
            leaf = callee.rsplit(".", 1)[-1]
            if leaf in _GUARDED_CTORS:
                self.ctors.append(
                    CtorSite(node.lineno, node.col_offset + 1, callee,
                             node in self._fallback_calls))
            arg_records = self._classify_args(node)
            if arg_records:
                reliable = not any(isinstance(arg, ast.Starred) for arg in node.args)
                self.calls.append(
                    CallSite(node.lineno, node.col_offset + 1, callee,
                             tuple(arg_records), reliable))
        self.generic_visit(node)

    def _classify_args(self, node: ast.Call) -> list[ArgRecord]:
        records: list[ArgRecord] = []
        for slot, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            record = self._classify_expr(arg, slot, "")
            if record is not None:
                records.append(record)
        for keyword in node.keywords:
            if keyword.arg is None:  # **kwargs
                continue
            record = self._classify_expr(keyword.value, -1, keyword.arg)
            if record is not None:
                records.append(record)
        return records

    def _classify_expr(self, expr: ast.expr, slot: int, keyword: str) -> ArgRecord | None:
        # Only provably-suspicious expressions are summarized: numeric
        # literals (a seed where a Generator belongs) and inline RNG
        # constructions.  Everything else is unknown and never flagged,
        # which also keeps summaries (and the cache) small.
        if isinstance(expr, ast.Constant):
            if not isinstance(expr.value, (int, float)) or isinstance(expr.value, bool):
                return None
            return ArgRecord(slot, keyword, "const", repr(expr.value),
                             expr.lineno, expr.col_offset + 1)
        if isinstance(expr, ast.Call):
            resolved = self.imports.resolve(expr.func)
            if resolved is not None and is_inline_rng_origin(resolved):
                return ArgRecord(slot, keyword, "call", resolved,
                                 expr.lineno, expr.col_offset + 1)
        return None


def extract_summary(
    tree: ast.Module,
    module: str,
    display_path: str,
    suppress_file: tuple[str, ...] = (),
    suppress_lines: dict[int, tuple[str, ...]] | None = None,
) -> ModuleSummary:
    """Build the project-phase summary for one parsed module."""
    imports = ImportMap(tree)
    visitor = _SummaryVisitor(module, imports)
    visitor.visit(tree)
    symbols: dict[str, SymbolInfo] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params, annotations = _function_params(node)
            symbols[node.name] = SymbolInfo(node.name, "func", node.lineno,
                                            params, annotations)
        elif isinstance(node, ast.ClassDef):
            symbols[node.name] = _class_symbol(node)
    return ModuleSummary(
        module=module,
        path=display_path,
        imports=tuple(visitor.import_records),
        symbols=symbols,
        exports=dict(imports.aliases),
        calls=tuple(visitor.calls),
        ctors=tuple(visitor.ctors),
        suppress_file=suppress_file,
        suppress_lines=dict(suppress_lines or {}),
    )


class ProjectContext:
    """The assembled whole-program view handed to project rules."""

    def __init__(self, summaries: list[ModuleSummary]):
        self.by_module: dict[str, ModuleSummary] = {}
        self.by_path: dict[str, ModuleSummary] = {}
        for summary in summaries:
            # First occurrence wins so iteration order (sorted paths) is
            # deterministic even if two trees define the same module name.
            self.by_module.setdefault(summary.module, summary)
            self.by_path[summary.path] = summary

    def modules(self) -> Iterator[ModuleSummary]:
        """Summaries in sorted module-name order (deterministic)."""
        for module in sorted(self.by_module):
            yield self.by_module[module]

    # -- import graph --------------------------------------------------
    def resolve_import_target(self, record: ImportRecord) -> str | None:
        """Project module a statement imports, refined to submodules.

        ``from pkg import sub`` resolves to ``pkg.sub`` when ``sub`` is a
        project module (re-export edges through ``__init__`` would
        otherwise read as cycles); plain ``import pkg.mod`` resolves to
        the deepest known prefix.
        """
        target = record.target
        if record.names:
            submodules = [f"{target}.{name}" for name in record.names
                          if f"{target}.{name}" in self.by_module]
            if submodules and len(submodules) == len(record.names):
                # Every imported name is itself a module: this is a
                # submodule import, not a symbol import.
                return submodules[0]
        candidate = target
        while candidate:
            if candidate in self.by_module:
                return candidate
            candidate = candidate.rpartition(".")[0]
        return None

    def import_edges(self, summary: ModuleSummary) -> Iterator[tuple[ImportRecord, str]]:
        """(record, resolved project module) for a summary's imports."""
        for record in summary.imports:
            resolved = self.resolve_import_target(record)
            if resolved is not None and resolved != summary.module:
                yield record, resolved

    def import_graph(self) -> dict[str, set[str]]:
        """Module → imported project modules (submodule-refined)."""
        graph: dict[str, set[str]] = {}
        for summary in self.modules():
            graph[summary.module] = {target for _, target in self.import_edges(summary)}
        return graph

    # -- symbol table --------------------------------------------------
    def resolve_symbol(self, ref: str, _depth: int = 0) -> SymbolInfo | None:
        """Look up a dotted reference in the project symbol table.

        Follows re-export chains (``from .cluster import CosmoCluster``
        in a package ``__init__`` makes ``pkg.CosmoCluster`` an alias of
        ``pkg.cluster.CosmoCluster``) up to a bounded depth.
        """
        if _depth > 8:
            return None
        module, _, symbol = ref.rpartition(".")
        while module and module not in self.by_module:
            module, _, rest = module.rpartition(".")
            symbol = f"{rest}.{symbol}"
        if not module or "." in symbol:
            return None
        summary = self.by_module[module]
        info = summary.symbols.get(symbol)
        if info is not None:
            return info
        alias = summary.exports.get(symbol)
        if alias is not None and alias != ref:
            return self.resolve_symbol(alias, _depth + 1)
        return None
