"""Incremental analysis cache keyed by content hash.

A cache entry stores, per file, the post-suppression file-rule
diagnostics *and* the module summary the project phase consumes.  On a
warm run an unchanged file is neither re-read into an AST nor re-visited
by any rule: its diagnostics are replayed and its summary feeds the
project phase directly, which is what makes a warm re-run over an
unchanged tree several times faster than a cold one while producing
byte-identical reports (the engine re-sorts diagnostics regardless of
where they came from).

The cache is invalidated wholesale when the *signature* changes — the
engine version, the interpreter version, or the effective file-rule set
(``--select``/``--ignore``) — and per file when the content hash
changes.  For ``__init__.py`` the sibling-module list is folded into
the hash because ``all-consistency`` verdicts depend on it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ModuleSummary

__all__ = ["AnalysisCache", "content_hash", "CACHE_FORMAT_VERSION", "ENGINE_VERSION"]

#: Bump when the on-disk cache layout changes.
CACHE_FORMAT_VERSION = 1

#: Bump when rule semantics change in a way cached verdicts must not survive.
ENGINE_VERSION = 3


def content_hash(source: str, extra: Iterable[str] = ()) -> str:
    """Stable digest of one file's lint-relevant content."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(source.encode("utf-8"))
    for item in extra:
        digest.update(b"\x00")
        digest.update(item.encode("utf-8"))
    return digest.hexdigest()


def _signature(file_rule_ids: Iterable[str]) -> str:
    import sys

    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"v{CACHE_FORMAT_VERSION}.{ENGINE_VERSION}".encode())
    digest.update(f"py{sys.version_info.major}.{sys.version_info.minor}".encode())
    for rule_id in sorted(file_rule_ids):
        digest.update(b"\x00")
        digest.update(rule_id.encode("utf-8"))
    return digest.hexdigest()


class AnalysisCache:
    """Content-hash keyed store of per-file lint results and summaries."""

    def __init__(self, path: str | Path | None, file_rule_ids: Iterable[str]):
        self.path = Path(path) if path is not None else None
        self.signature = _signature(file_rule_ids)
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict[str, Any]] = {}
        self._touched: set[str] = set()
        self._load()

    def _load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # unreadable cache: start cold
        if (
            payload.get("format") != CACHE_FORMAT_VERSION
            or payload.get("signature") != self.signature
        ):
            return  # engine/rule-set changed: start cold
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def lookup(self, display_path: str, file_hash: str) -> tuple[list[Diagnostic], int, ModuleSummary] | None:
        """Replay ``(diagnostics, suppressed, summary)`` on a hash hit."""
        self._touched.add(display_path)
        entry = self._entries.get(display_path)
        if entry is None or entry.get("hash") != file_hash:
            self.misses += 1
            return None
        try:
            diagnostics = [Diagnostic(**record) for record in entry["diagnostics"]]
            summary = ModuleSummary.from_dict(entry["summary"])
            suppressed = int(entry["suppressed"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return diagnostics, suppressed, summary

    def store(
        self,
        display_path: str,
        file_hash: str,
        diagnostics: list[Diagnostic],
        suppressed: int,
        summary: ModuleSummary,
    ) -> None:
        self._touched.add(display_path)
        self._entries[display_path] = {
            "hash": file_hash,
            "diagnostics": [diagnostic.as_dict() for diagnostic in diagnostics],
            "suppressed": suppressed,
            "summary": summary.as_dict(),
        }

    def save(self) -> None:
        """Atomically persist the entries touched by this run."""
        if self.path is None:
            return
        entries = {path: self._entries[path]
                   for path in sorted(self._touched) if path in self._entries}
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "signature": self.signature,
            "entries": entries,
        }
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        tmp_path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        tmp_path.replace(self.path)
