"""Per-rule suppression comments.

Two forms are recognized, both parsed from real tokenizer output (so
strings containing the marker text never suppress anything):

* ``# cosmolint: disable=rule-id[,rule-id...]`` — suppresses the listed
  rules on the physical line carrying the comment;
* ``# cosmolint: disable-file=rule-id[,rule-id...]`` — suppresses the
  listed rules for the whole file (conventionally placed at the top).

``disable=all`` (or ``disable-file=all``) suppresses every rule.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["Suppressions", "parse_suppressions"]

_DIRECTIVE_RE = re.compile(
    r"#\s*cosmolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[\w\-, ]+)"
)


class Suppressions:
    """Suppression state for one file."""

    def __init__(self) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()

    def add(self, kind: str, line: int, rules: set[str]) -> None:
        if kind == "disable-file":
            self.file_wide |= rules
        else:
            self.by_line.setdefault(line, set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        for active in (self.file_wide, self.by_line.get(line, ())):
            if rule in active or "all" in active:
                return True
        return False


def parse_suppressions(source: str) -> Suppressions:
    """Extract cosmolint directives from ``source``'s comments."""
    suppressions = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE_RE.search(token.string)
            if match is None:
                continue
            rules = {part.strip() for part in match.group("rules").split(",")}
            rules.discard("")
            if rules:
                suppressions.add(match.group("kind"), token.start[0], rules)
    except tokenize.TokenizeError:
        pass  # the engine reports the syntax error separately
    return suppressions
