"""Layering and import-cycle rules driven by a declared architecture map.

The reproduction's packages form a DAG of layers: catalog/behavior feed
the core pipeline, core feeds serving, serving feeds refresh, and the
CLI sits on top.  :data:`ARCHITECTURE` writes that DAG down; the
``layering`` rule flags any ``repro``-internal import the map does not
sanction (e.g. ``core`` reaching into ``serving``), and ``import-cycle``
flags strongly-connected components in the module import graph.

The map is *intent*, not a transcription of today's imports: a
violation means either the code or the declared architecture must
change, and the decision is recorded by fixing the import or adding a
``lint-baseline.json`` entry (see DESIGN.md §8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ModuleSummary, ProjectContext
from repro.lint.registry import ProjectRule, register

__all__ = ["Architecture", "ARCHITECTURE", "LayeringRule", "ImportCycleRule"]


@dataclass(frozen=True)
class Architecture:
    """A declared layering map for one root package.

    ``allowed`` maps each first-level package to the set of sibling
    packages it may import from; ``shared_modules`` lists individual
    modules (dotted names) importable from anywhere — the small shared
    vocabulary (relation taxonomy, prompt templates) that lower layers
    legitimately depend on.
    """

    root: str
    allowed: dict[str, frozenset[str]]
    shared_modules: frozenset[str] = field(default_factory=frozenset)

    def package_of(self, module: str) -> str | None:
        """First-level package of ``module``, or None outside ``root``."""
        prefix = self.root + "."
        if not module.startswith(prefix):
            return None
        return module[len(prefix):].split(".", 1)[0]


_EVERYTHING = frozenset({
    "utils", "nn", "catalog", "behavior", "embeddings", "annotation", "llm",
    "core", "obs", "serving", "refresh", "apps", "reporting", "lint",
})

#: The declared architecture of the COSMO reproduction (DESIGN.md §3).
#: Key contracts: core/behavior/catalog may not import serving/refresh/obs
#: (determinism flows upward, instrumentation is injected); serving may
#: not import refresh (snapshots are pushed into serving, never pulled);
#: only the CLI may import everything.
ARCHITECTURE = Architecture(
    root="repro",
    allowed={
        "utils": frozenset(),
        "nn": frozenset({"utils"}),
        "catalog": frozenset({"utils", "behavior"}),
        "behavior": frozenset({"utils", "catalog"}),
        "embeddings": frozenset({"utils", "nn"}),
        "annotation": frozenset({"utils"}),
        "llm": frozenset({"utils", "nn", "catalog", "behavior"}),
        "core": frozenset({"utils", "nn", "catalog", "behavior", "llm",
                           "embeddings", "annotation"}),
        "obs": frozenset({"utils"}),
        "serving": frozenset({"utils", "obs", "llm", "core"}),
        "refresh": frozenset({"utils", "obs", "core", "llm", "behavior",
                              "serving"}),
        "apps": frozenset({"utils", "nn", "catalog", "behavior", "core",
                           "embeddings", "llm"}),
        "reporting": frozenset({"utils"}),
        "lint": frozenset({"utils"}),
        "cli": _EVERYTHING,
    },
    # The shared vocabulary: relation taxonomy and prompt templates are
    # leaf data modules imported by catalog/behavior/llm below core.
    shared_modules=frozenset({"repro.core.relations", "repro.core.prompts"}),
)


@register
class LayeringRule(ProjectRule):
    """Enforce the declared package layering across the whole program."""

    id = "layering"
    summary = "repro-internal imports must follow the declared architecture map"
    invariant = "determinism contracts compose across module boundaries (no layer inversion)"

    def __init__(self, architecture: Architecture | None = None):
        super().__init__()
        self.architecture = architecture if architecture is not None else ARCHITECTURE

    def check(self, project: ProjectContext) -> list[Diagnostic]:
        arch = self.architecture
        unmapped_reported: set[str] = set()
        for summary in project.modules():
            src_pkg = arch.package_of(summary.module)
            if src_pkg is None:
                continue
            if src_pkg not in arch.allowed:
                if src_pkg not in unmapped_reported:
                    unmapped_reported.add(src_pkg)
                    self.report(
                        summary.path, 1, 1,
                        f"package '{src_pkg}' is not in the declared architecture "
                        "map; add it to repro.lint.layers.ARCHITECTURE with its "
                        "allowed imports",
                    )
                continue
            for record, target in project.import_edges(summary):
                dst_pkg = arch.package_of(target)
                if dst_pkg is None or dst_pkg == src_pkg:
                    continue
                if target in arch.shared_modules:
                    continue
                if dst_pkg not in arch.allowed[src_pkg]:
                    self.report(
                        summary.path, record.line, record.col,
                        f"layer '{src_pkg}' may not import layer '{dst_pkg}' "
                        f"({summary.module} -> {target}); the declared "
                        f"architecture allows {src_pkg} -> "
                        f"{{{', '.join(sorted(arch.allowed[src_pkg])) or 'nothing'}}}",
                    )
        return self.diagnostics


@register
class ImportCycleRule(ProjectRule):
    """Flag strongly-connected components in the module import graph."""

    id = "import-cycle"
    summary = "the module import graph must stay acyclic"
    invariant = "modules initialize in one deterministic order (no partial-import states)"

    def check(self, project: ProjectContext) -> list[Diagnostic]:
        graph = project.import_graph()
        for cycle in _strongly_connected(graph):
            anchor = cycle[0]
            summary = project.by_module[anchor]
            line, col = self._edge_location(project, summary, set(cycle))
            ring = " -> ".join([*cycle, anchor])
            self.report(
                summary.path, line, col,
                f"import cycle between {len(cycle)} modules: {ring}; break the "
                "cycle by extracting the shared piece into a lower layer",
            )
        return self.diagnostics

    @staticmethod
    def _edge_location(project: ProjectContext, summary: ModuleSummary,
                       members: set[str]) -> tuple[int, int]:
        for record, target in project.import_edges(summary):
            if target in members:
                return record.line, record.col
        return 1, 1


def _strongly_connected(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan SCCs of size > 1, each sorted, in deterministic order."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    cycles: list[list[str]] = []

    def connect(root: str) -> None:
        nonlocal counter
        # Iterative Tarjan: (node, iterator position) work stack.
        work = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            children = sorted(target for target in graph.get(node, ())
                              if target in graph)
            advanced = False
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index_of:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    cycles.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for node in sorted(graph):
        if node not in index_of:
            connect(node)
    return sorted(cycles)
