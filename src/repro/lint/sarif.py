"""SARIF 2.1.0 reporter and a structural schema validator.

``format_sarif`` renders a :class:`~repro.lint.engine.LintResult` as a
SARIF (Static Analysis Results Interchange Format) 2.1.0 log so CI
platforms can ingest cosmolint findings natively.  The output is fully
deterministic (sorted keys, diagnostics already sorted by the engine)
and therefore byte-comparable across runs — the CI cache check relies
on that.

``validate_sarif`` is a dependency-free structural check of the subset
of the SARIF 2.1.0 schema cosmolint emits (versioned envelope, driver
rule table, result/rule cross-references, physical locations).  Tests
run every emitted payload through it.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lint.engine import LintResult
from repro.lint.registry import all_rules

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "format_sarif", "sarif_log", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_VERSION = "2.0.0"
_INFO_URI = "https://github.com/paper-repo-growth/repro"


def _rule_descriptor(rule_id: str, summary: str, invariant: str,
                     scope: str, autofixable: bool) -> dict[str, Any]:
    return {
        "id": rule_id,
        "shortDescription": {"text": summary},
        "fullDescription": {"text": f"guards: {invariant}"},
        "defaultConfiguration": {"level": "error"},
        "properties": {"scope": scope, "autofixable": autofixable},
    }


def sarif_log(result: LintResult) -> dict[str, Any]:
    """The SARIF log for one lint run, as a plain dict."""
    descriptors = [
        _rule_descriptor(cls.id, cls.summary, cls.invariant, cls.scope, cls.autofixable)
        for cls in all_rules()
    ]
    index_of = {descriptor["id"]: index for index, descriptor in enumerate(descriptors)}
    # Diagnostics can carry rule ids outside the registry (syntax-error);
    # give them descriptors too so every result cross-references a rule.
    for diagnostic in result.diagnostics:
        if diagnostic.rule not in index_of:
            index_of[diagnostic.rule] = len(descriptors)
            descriptors.append(_rule_descriptor(
                diagnostic.rule, "module could not be analyzed",
                "the tree parses", "file", False))

    results = [
        {
            "ruleId": diagnostic.rule,
            "ruleIndex": index_of[diagnostic.rule],
            "level": "error",
            "message": {"text": diagnostic.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": diagnostic.path.replace("\\", "/")},
                        "region": {
                            "startLine": diagnostic.line,
                            "startColumn": diagnostic.col,
                        },
                    }
                }
            ],
        }
        for diagnostic in result.diagnostics
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "cosmolint",
                        "informationUri": _INFO_URI,
                        "semanticVersion": _TOOL_VERSION,
                        "rules": descriptors,
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
                "properties": {
                    "filesChecked": result.files_checked,
                    "suppressed": result.suppressed,
                    "baselined": result.baselined,
                },
            }
        ],
    }


def format_sarif(result: LintResult) -> str:
    """Serialize the SARIF log (stable key order, deterministic bytes)."""
    return json.dumps(sarif_log(result), indent=2, sort_keys=True)


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid SARIF: {message}")


def validate_sarif(payload: dict[str, Any]) -> dict[str, Any]:
    """Structurally validate a SARIF 2.1.0 log; returns it unchanged.

    Checks the envelope, the driver rule table and every result's
    cross-references against the subset of the schema cosmolint emits.
    Raises :class:`ValueError` on the first violation.
    """
    _expect(isinstance(payload, dict), "log must be an object")
    _expect(payload.get("version") == SARIF_VERSION,
            f"version must be {SARIF_VERSION!r}")
    _expect(isinstance(payload.get("$schema"), str), "$schema must be a string")
    runs = payload.get("runs")
    _expect(isinstance(runs, list) and len(runs) >= 1, "runs must be a non-empty array")
    for run in runs:
        _expect(isinstance(run, dict), "run must be an object")
        driver = run.get("tool", {}).get("driver", {})
        _expect(isinstance(driver.get("name"), str) and driver["name"],
                "tool.driver.name must be a non-empty string")
        rules = driver.get("rules", [])
        _expect(isinstance(rules, list), "driver.rules must be an array")
        rule_ids = []
        for rule in rules:
            _expect(isinstance(rule.get("id"), str) and rule["id"],
                    "every rule needs a string id")
            _expect(isinstance(rule.get("shortDescription", {}).get("text"), str),
                    "every rule needs shortDescription.text")
            rule_ids.append(rule["id"])
        _expect(len(rule_ids) == len(set(rule_ids)), "rule ids must be unique")
        results = run.get("results")
        _expect(isinstance(results, list), "run.results must be an array")
        for item in results:
            _expect(item.get("ruleId") in rule_ids,
                    f"result ruleId {item.get('ruleId')!r} not in driver.rules")
            index = item.get("ruleIndex")
            _expect(isinstance(index, int) and 0 <= index < len(rules)
                    and rules[index]["id"] == item["ruleId"],
                    "result ruleIndex must match its ruleId's position")
            _expect(item.get("level") in ("none", "note", "warning", "error"),
                    "result level must be a SARIF level")
            _expect(isinstance(item.get("message", {}).get("text"), str),
                    "result message.text must be a string")
            locations = item.get("locations")
            _expect(isinstance(locations, list) and len(locations) >= 1,
                    "result needs at least one location")
            for location in locations:
                physical = location.get("physicalLocation", {})
                uri = physical.get("artifactLocation", {}).get("uri")
                _expect(isinstance(uri, str) and uri, "location needs artifact uri")
                region = physical.get("region", {})
                _expect(isinstance(region.get("startLine"), int)
                        and region["startLine"] >= 1,
                        "region.startLine must be a positive integer")
    return payload
