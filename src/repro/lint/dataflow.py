"""Cross-module dataflow contract rules.

These rules use the project symbol table to check what actually *flows
across module boundaries*, which file-local AST rules cannot see:

* ``rng-provenance`` — an argument bound to a remote ``rng`` parameter
  (name ``rng`` or a ``Generator`` annotation, discovered in the callee's
  defining module) must not be a numeric literal or an inline
  ``numpy.random``/stdlib-``random`` construction.  Together with the
  file-local ``unscoped-rng`` ban this closes the loop: every Generator
  reaching a constructor originates from ``spawn_rng`` or an injected
  stream, repo-wide.
* ``clock-injection`` — only sanctioned factory modules may construct
  ``SimClock``; everything else accepts an injected clock (the
  ``clock if clock is not None else SimClock()`` constructor-default
  idiom is the sanctioned injection fallback) or derives one via
  ``SimClock.fork()``.
* ``registry-injection`` — serving/pipeline components must accept a
  shared ``MetricsRegistry`` rather than instantiate their own, so all
  replicas publish into one scrape surface (DESIGN.md §9).
"""

from __future__ import annotations

from typing import ClassVar

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ProjectContext, is_inline_rng_origin
from repro.lint.registry import ProjectRule, register

__all__ = ["RngProvenanceRule", "ClockInjectionRule", "RegistryInjectionRule"]


@register
class RngProvenanceRule(ProjectRule):
    """RNG arguments crossing module boundaries keep spawn_rng provenance."""

    id = "rng-provenance"
    summary = "Generators passed to rng parameters must come from spawn_rng or injection"
    invariant = "every random stream is traceable to a (seed, scope) pair, repo-wide"

    def check(self, project: ProjectContext) -> list[Diagnostic]:
        for summary in project.modules():
            for site in summary.calls:
                info = project.resolve_symbol(site.callee)
                if info is None or not info.has_params:
                    continue
                rng_params = info.rng_params()
                if not rng_params:
                    continue
                leaf = site.callee.rsplit(".", 1)[-1]
                for arg in site.args:
                    bound = self._bound_param(arg, rng_params, site.positional_reliable)
                    if bound is None:
                        continue
                    if arg.kind == "const":
                        self.report(
                            summary.path, arg.line, arg.col,
                            f"{leaf}() parameter {bound!r} expects a Generator "
                            f"but receives the literal {arg.detail}; derive the "
                            "stream with repro.utils.rng.spawn_rng(seed, "
                            "scope=...) or inject it from the caller",
                        )
                    elif arg.kind == "call" and is_inline_rng_origin(arg.detail):
                        self.report(
                            summary.path, arg.line, arg.col,
                            f"Generator passed to {leaf}() parameter {bound!r} "
                            f"is created inline via {arg.detail}, outside the "
                            "seed+scope provenance; use repro.utils.rng."
                            "spawn_rng(seed, scope=...) instead",
                        )
        return self.diagnostics

    @staticmethod
    def _bound_param(arg, rng_params, positional_reliable: bool) -> str | None:
        for index, name in rng_params:
            if arg.keyword:
                if arg.keyword == name:
                    return name
            elif positional_reliable and arg.slot == index:
                return name
        return None


class _InjectionRule(ProjectRule):
    """Shared machinery: a guarded class constructible only in factories."""

    #: Leaf class name being guarded (e.g. ``SimClock``).
    guarded: ClassVar[str] = ""
    #: Modules allowed to construct it freely.
    sanctioned_modules: ClassVar[frozenset[str]] = frozenset()
    #: Module prefixes allowed to construct it freely (own package).
    sanctioned_prefixes: ClassVar[tuple[str, ...]] = ()
    #: Root package the rule patrols (scripts/benchmarks are exempt).
    root: ClassVar[str] = "repro"

    def _sanctioned(self, module: str) -> bool:
        if module in self.sanctioned_modules:
            return True
        return any(module == prefix or module.startswith(prefix + ".")
                   for prefix in self.sanctioned_prefixes)

    def _message(self, site_name: str) -> str:
        raise NotImplementedError

    def check(self, project: ProjectContext) -> list[Diagnostic]:
        for summary in project.modules():
            if summary.module != self.root and not summary.module.startswith(self.root + "."):
                continue
            if self._sanctioned(summary.module):
                continue
            for site in summary.ctors:
                if not site.name.startswith(self.root + "."):
                    continue
                if site.name.rsplit(".", 1)[-1] != self.guarded:
                    continue
                if site.injected_fallback:
                    continue  # the constructor-default injection idiom
                self.report(summary.path, site.line, site.col, self._message(site.name))
        return self.diagnostics


@register
class ClockInjectionRule(_InjectionRule):
    """SimClock is constructed only by sanctioned factories."""

    id = "clock-injection"
    summary = "SimClock constructed only in sanctioned factories; elsewhere injected"
    invariant = "one simulated timeline per scenario (no drifting private clocks)"

    guarded = "SimClock"
    sanctioned_modules = frozenset({"repro.cli"})
    sanctioned_prefixes = ("repro.serving.clock", "repro.serving.chaos")

    def _message(self, site_name: str) -> str:
        return (
            "SimClock constructed outside a sanctioned factory couples this "
            "component to a private timeline; accept an injected clock "
            "(clock: SimClock | None = None) or derive one with clock.fork()"
        )


@register
class RegistryInjectionRule(_InjectionRule):
    """MetricsRegistry is injected into components, never self-created."""

    id = "registry-injection"
    summary = "components accept a shared MetricsRegistry, never instantiate one"
    invariant = "all components publish into one scrape surface (DESIGN.md §9)"

    guarded = "MetricsRegistry"
    sanctioned_modules = frozenset({"repro.cli"})
    sanctioned_prefixes = ("repro.obs",)

    def _message(self, site_name: str) -> str:
        return (
            "MetricsRegistry constructed inside a component fragments the "
            "scrape surface; accept an injected registry (registry: "
            "MetricsRegistry | None = None) and default only via the "
            "`x if x is not None else MetricsRegistry()` fallback idiom"
        )
