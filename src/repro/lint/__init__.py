"""cosmolint — whole-program static analysis for the COSMO reproduction.

A two-phase analysis over the repo's own source enforcing the contracts
the reproduction's numbers depend on.  Phase one runs file-scope AST
rules (unscoped RNG, wall clock, mutable defaults, overbroad excepts,
float equality, ``__all__`` consistency, event-log-only serving,
builder-only snapshots); phase two assembles per-module summaries into
an import graph + symbol table and runs the cross-module rules:
declared-architecture layering, import-cycle detection, and the
dataflow contracts (RNG provenance, clock injection, registry
injection).  See DESIGN.md, section "Static invariants".

Unchanged files are replayed from a content-hash cache
(``.cosmolint-cache.json``), accepted diagnostics live in a checked-in
``lint-baseline.json``, reporters emit text, JSON or SARIF 2.1.0, and
``--fix`` applies mechanical repairs for the autofixable rules.

Run it with ``python -m repro.lint src benchmarks examples``,
``python -m repro.cli lint`` or the ``cosmolint`` console script;
suppress a finding in place with ``# cosmolint: disable=rule-id``.
"""

from repro.lint.autofix import fix_paths, fix_source
from repro.lint.baseline import Baseline
from repro.lint.cache import AnalysisCache
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintResult, iter_python_files, lint_paths, lint_source
from repro.lint.project import ModuleSummary, ProjectContext, extract_summary
from repro.lint.registry import (
    FileContext,
    LintRule,
    ProjectRule,
    all_rules,
    register,
    rule_ids,
)
from repro.lint.reporters import format_json, format_text
from repro.lint.sarif import format_sarif, validate_sarif

__all__ = [
    "AnalysisCache",
    "Baseline",
    "Diagnostic",
    "LintResult",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "FileContext",
    "LintRule",
    "ProjectRule",
    "ModuleSummary",
    "ProjectContext",
    "extract_summary",
    "all_rules",
    "register",
    "rule_ids",
    "fix_paths",
    "fix_source",
    "format_json",
    "format_text",
    "format_sarif",
    "validate_sarif",
]
