"""cosmolint — AST-based invariant checks for the COSMO reproduction.

A small static-analysis pass over the repo's own source enforcing the
contracts the reproduction's numbers depend on: every random stream is
derived through ``spawn_rng(seed, scope)``, the serving layer runs on
``SimClock`` simulated time, and a handful of general hygiene rules
(mutable defaults, overbroad excepts, float equality in metrics,
``__all__`` consistency).  See DESIGN.md, section "Static invariants".

Run it with ``python -m repro.lint src benchmarks examples`` or
``python -m repro.cli lint``; suppress a finding in place with
``# cosmolint: disable=rule-id``.
"""

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintResult, iter_python_files, lint_paths, lint_source
from repro.lint.registry import FileContext, LintRule, all_rules, register, rule_ids
from repro.lint.reporters import format_json, format_text

__all__ = [
    "Diagnostic",
    "LintResult",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "FileContext",
    "LintRule",
    "all_rules",
    "register",
    "rule_ids",
    "format_json",
    "format_text",
]
