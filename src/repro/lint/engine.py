"""The cosmolint engine: collect files, run rules, apply suppressions.

The engine is pure — it reads files and returns a :class:`LintResult`;
reporters render it and the CLI maps it to an exit code.  ``lint_source``
lints a single in-memory module, which is what the rule tests use (rules
are exercised against fixture snippets, never the live tree).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import FileContext, LintRule, all_rules, make_filter
from repro.lint.suppressions import parse_suppressions
from repro.lint import rules as _rules  # noqa: F401  (imports register the rule set)

__all__ = ["LintResult", "iter_python_files", "lint_source", "lint_paths"]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def extend(self, other: "LintResult") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.files_checked += other.files_checked
        self.suppressed += other.suppressed

    def finalize(self) -> "LintResult":
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in deterministic order."""
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                relative_parts = candidate.relative_to(path).parts
                if any(part in _SKIP_DIRS or part.startswith(".") for part in relative_parts):
                    continue
                yield candidate
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def _sibling_modules(path: Path) -> tuple[str, ...]:
    """Importable sibling names for a package ``__init__.py``."""
    if path.name != "__init__.py":
        return ()
    names = []
    for entry in path.parent.iterdir():
        if entry.is_file() and entry.suffix == ".py" and entry.name != "__init__.py":
            names.append(entry.stem)
        elif entry.is_dir() and (entry / "__init__.py").exists():
            names.append(entry.name)
    return tuple(sorted(names))


def _build_context(path: Path, display_path: str, source: str) -> FileContext:
    return FileContext(
        display_path=display_path,
        source=source,
        in_package=(path.parent / "__init__.py").exists(),
        parts=tuple(Path(display_path).parts),
        sibling_modules=_sibling_modules(path),
    )


def lint_source(
    source: str,
    display_path: str = "<string>",
    in_package: bool = False,
    rule_classes: Iterable[type[LintRule]] | None = None,
) -> LintResult:
    """Lint one in-memory module (the rule-test entry point)."""
    context = FileContext(
        display_path=display_path,
        source=source,
        in_package=in_package,
        parts=tuple(Path(display_path).parts),
    )
    return _lint_context(context, rule_classes).finalize()


def _lint_context(
    context: FileContext,
    rule_classes: Iterable[type[LintRule]] | None = None,
) -> LintResult:
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(context.source, filename=context.display_path)
    except SyntaxError as error:
        result.diagnostics.append(
            Diagnostic(
                rule="syntax-error",
                path=context.display_path,
                line=error.lineno or 1,
                col=(error.offset or 0) or 1,
                message=f"cannot parse module: {error.msg}",
            )
        )
        return result
    suppressions = parse_suppressions(context.source)
    for rule_class in rule_classes if rule_classes is not None else all_rules():
        if not rule_class.applies_to(context):
            continue
        for diagnostic in rule_class(context).check(tree):
            if suppressions.is_suppressed(diagnostic.rule, diagnostic.line):
                result.suppressed += 1
            else:
                result.diagnostics.append(diagnostic)
    return result


def lint_paths(
    paths: Iterable[str | Path],
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> LintResult:
    """Lint every Python file under ``paths`` with the registered rules."""
    keep = make_filter(select, ignore)
    rule_classes = [rule_class for rule_class in all_rules() if keep(rule_class)]
    result = LintResult()
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        context = _build_context(path, str(path), source)
        result.extend(_lint_context(context, rule_classes))
    return result.finalize()
