"""The cosmolint engine: collect files, run rules, apply suppressions.

Linting is two-phase.  Phase one runs the file-scope rules over each
module's AST and extracts a :class:`~repro.lint.project.ModuleSummary`;
both are cached per content hash, so a warm run replays unchanged files
without parsing.  Phase two assembles the summaries into a
:class:`~repro.lint.project.ProjectContext` and runs the project-scope
rules (layering, cycles, cross-module dataflow contracts) over the whole
program.  Diagnostics from both phases share one suppression syntax and
one deterministic sort order, so reports are byte-identical regardless
of cache state.

The engine is pure — it reads files and returns a :class:`LintResult`;
reporters render it and the CLI maps it to an exit code.  ``lint_source``
lints a single in-memory module with the file rules, which is what the
rule tests use (rules are exercised against fixture snippets, never the
live tree).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.baseline import Baseline
from repro.lint.cache import AnalysisCache, content_hash
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import (
    ModuleSummary,
    ProjectContext,
    extract_summary,
    module_name_for,
)
from repro.lint.registry import (
    FileContext,
    LintRule,
    ProjectRule,
    all_rules,
    make_filter,
)
from repro.lint.suppressions import Suppressions, parse_suppressions
from repro.lint import rules as _rules  # noqa: F401  (imports register the file rules)
from repro.lint import layers as _layers  # noqa: F401  (registers project rules)
from repro.lint import dataflow as _dataflow  # noqa: F401  (registers project rules)

__all__ = ["LintResult", "iter_python_files", "lint_source", "lint_paths"]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def extend(self, other: "LintResult") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.files_checked += other.files_checked
        self.suppressed += other.suppressed
        self.baselined += other.baselined

    def finalize(self) -> "LintResult":
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in deterministic order."""
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                relative_parts = candidate.relative_to(path).parts
                if any(part in _SKIP_DIRS or part.startswith(".") for part in relative_parts):
                    continue
                yield candidate
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def _sibling_modules(path: Path) -> tuple[str, ...]:
    """Importable sibling names for a package ``__init__.py``."""
    if path.name != "__init__.py":
        return ()
    names = []
    for entry in path.parent.iterdir():
        if entry.is_file() and entry.suffix == ".py" and entry.name != "__init__.py":
            names.append(entry.stem)
        elif entry.is_dir() and (entry / "__init__.py").exists():
            names.append(entry.name)
    return tuple(sorted(names))


def _build_context(path: Path, display_path: str, source: str,
                   sibling_modules: tuple[str, ...]) -> FileContext:
    return FileContext(
        display_path=display_path,
        source=source,
        in_package=(path.parent / "__init__.py").exists(),
        parts=tuple(Path(display_path).parts),
        sibling_modules=sibling_modules,
    )


def lint_source(
    source: str,
    display_path: str = "<string>",
    in_package: bool = False,
    rule_classes: Iterable[type[LintRule]] | None = None,
) -> LintResult:
    """Lint one in-memory module with the file rules (rule-test entry point)."""
    context = FileContext(
        display_path=display_path,
        source=source,
        in_package=in_package,
        parts=tuple(Path(display_path).parts),
    )
    if rule_classes is None:
        rule_classes = [cls for cls in all_rules() if cls.scope == "file"]  # type: ignore[misc]
    result, _tree, _suppressions = _lint_context(context, rule_classes)
    return result.finalize()


def _lint_context(
    context: FileContext,
    rule_classes: Iterable[type[LintRule]],
) -> tuple[LintResult, ast.Module | None, Suppressions | None]:
    """Run the file rules; also return the parsed tree and suppressions
    so the caller can extract the module summary from the same parse."""
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(context.source, filename=context.display_path)
    except SyntaxError as error:
        result.diagnostics.append(
            Diagnostic(
                rule="syntax-error",
                path=context.display_path,
                line=error.lineno or 1,
                col=(error.offset or 0) or 1,
                message=f"cannot parse module: {error.msg}",
            )
        )
        return result, None, None
    suppressions = parse_suppressions(context.source)
    for rule_class in rule_classes:
        if rule_class.scope != "file" or not rule_class.applies_to(context):
            continue
        for diagnostic in rule_class(context).check(tree):
            if suppressions.is_suppressed(diagnostic.rule, diagnostic.line):
                result.suppressed += 1
            else:
                result.diagnostics.append(diagnostic)
    return result, tree, suppressions


def _summarize(tree: ast.Module | None, path: Path, display_path: str,
               suppressions: Suppressions | None) -> ModuleSummary:
    module = module_name_for(path)
    if tree is None:  # syntax error: an empty summary keeps phase two total
        return ModuleSummary(module=module, path=display_path)
    suppress_file: tuple[str, ...] = ()
    suppress_lines: dict[int, tuple[str, ...]] = {}
    if suppressions is not None:
        suppress_file = tuple(sorted(suppressions.file_wide))
        suppress_lines = {line: tuple(sorted(rules))
                          for line, rules in suppressions.by_line.items()}
    return extract_summary(tree, module, display_path, suppress_file, suppress_lines)


def lint_paths(
    paths: Iterable[str | Path],
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    *,
    cache: AnalysisCache | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint every Python file under ``paths`` with both rule phases."""
    keep = make_filter(select, ignore)
    file_rule_classes = [cls for cls in all_rules()
                         if cls.scope == "file" and keep(cls)]
    project_rule_classes: list[type[ProjectRule]] = [
        cls for cls in all_rules()  # type: ignore[misc]
        if cls.scope == "project" and keep(cls)
    ]
    result = LintResult()
    summaries: list[ModuleSummary] = []

    # Phase one: per-file rules + summary extraction (cache-replayable).
    for path in iter_python_files(paths):
        display_path = str(path)
        source = path.read_text(encoding="utf-8")
        siblings = _sibling_modules(path)
        file_hash = content_hash(source, siblings)
        cached = cache.lookup(display_path, file_hash) if cache is not None else None
        if cached is not None:
            diagnostics, suppressed, summary = cached
            file_result = LintResult(
                diagnostics=list(diagnostics), files_checked=1, suppressed=suppressed
            )
        else:
            context = _build_context(path, display_path, source, siblings)
            file_result, tree, suppressions = _lint_context(context, file_rule_classes)
            summary = _summarize(tree, path, display_path, suppressions)
            if cache is not None:
                cache.store(display_path, file_hash, file_result.diagnostics,
                            file_result.suppressed, summary)
        result.extend(file_result)
        summaries.append(summary)

    # Phase two: whole-program rules over the assembled summaries.
    project = ProjectContext(summaries)
    for project_rule_class in project_rule_classes:
        for diagnostic in project_rule_class().check(project):
            summary = project.by_path.get(diagnostic.path)
            if summary is not None and summary.is_suppressed(diagnostic.rule,
                                                             diagnostic.line):
                result.suppressed += 1
            else:
                result.diagnostics.append(diagnostic)

    if baseline is not None:
        fresh = []
        for diagnostic in result.diagnostics:
            if baseline.matches(diagnostic):
                result.baselined += 1
            else:
                fresh.append(diagnostic)
        result.diagnostics = fresh

    if cache is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses
        cache.save()
    return result.finalize()
