"""Diagnostic records emitted by cosmolint rules.

A :class:`Diagnostic` is one rule violation at one source location.  The
engine sorts diagnostics by ``(path, line, col, rule)`` so reporter
output is stable across runs and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=False)
class Diagnostic:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable payload (the JSON reporter's row format)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human-readable form: ``path:line:col: [rule] message``."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
