"""Render a :class:`~repro.lint.engine.LintResult` for humans or machines."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.registry import all_rules

__all__ = ["format_text", "format_json", "format_rule_listing", "REPORT_VERSION"]

REPORT_VERSION = 1


def format_text(result: LintResult) -> str:
    """Human-readable report: one line per diagnostic plus a summary."""
    lines = [diagnostic.render() for diagnostic in result.diagnostics]
    noun = "problem" if len(result.diagnostics) == 1 else "problems"
    summary = (
        f"{len(result.diagnostics)} {noun} in {result.files_checked} files"
        f" ({result.suppressed} suppressed)"
    )
    if result.ok:
        summary = f"ok: {result.files_checked} files, 0 problems ({result.suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, versioned payload)."""
    payload = {
        "version": REPORT_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "diagnostics": [diagnostic.as_dict() for diagnostic in result.diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_rule_listing() -> str:
    """The ``--list-rules`` output: id, summary and guarded invariant."""
    lines: list[str] = []
    for rule_class in all_rules():
        lines.append(f"{rule_class.id}")
        lines.append(f"    {rule_class.summary}")
        lines.append(f"    guards: {rule_class.invariant}")
    return "\n".join(lines)
