"""Render a :class:`~repro.lint.engine.LintResult` for humans or machines.

Three formats: ``text`` (one line per diagnostic plus a summary),
``json`` (versioned payload, stable key order) and ``sarif`` (SARIF
2.1.0, in :mod:`repro.lint.sarif`).  All three are deterministic given
the same diagnostics, so cold and warm (cached) runs are byte-identical.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.registry import all_rules

__all__ = ["format_text", "format_json", "format_rule_listing", "REPORT_VERSION"]

REPORT_VERSION = 2


def _counts(result: LintResult) -> str:
    counts = f"{result.suppressed} suppressed"
    if result.baselined:
        counts += f", {result.baselined} baselined"
    return counts


def format_text(result: LintResult) -> str:
    """Human-readable report: one line per diagnostic plus a summary."""
    lines = [diagnostic.render() for diagnostic in result.diagnostics]
    noun = "problem" if len(result.diagnostics) == 1 else "problems"
    summary = (
        f"{len(result.diagnostics)} {noun} in {result.files_checked} files"
        f" ({_counts(result)})"
    )
    if result.ok:
        summary = f"ok: {result.files_checked} files, 0 problems ({_counts(result)})"
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, versioned payload)."""
    payload = {
        "version": REPORT_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "diagnostics": [diagnostic.as_dict() for diagnostic in result.diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_rule_listing() -> str:
    """The ``--list-rules`` output: id, scope, summary and guarded invariant."""
    lines: list[str] = []
    for rule_class in all_rules():
        tags = rule_class.scope
        if rule_class.autofixable:
            tags += ", autofixable"
        lines.append(f"{rule_class.id} [{tags}]")
        lines.append(f"    {rule_class.summary}")
        lines.append(f"    guards: {rule_class.invariant}")
    return "\n".join(lines)
