"""Mechanical autofixes (``--fix``) for the fixable rules.

Two rules are autofixable, and both fixes are semantics-preserving
rewrites at known-safe sites:

* ``mutable-default`` — ``def f(x=[])`` becomes ``def f(x=None)`` with an
  ``if x is None: x = []`` guard inserted after the docstring (the
  idiomatic repair, preserving the observable signature while unsharing
  the default).  Annotated parameters get ``| None`` widened in.
* ``float-equality`` — ``a == 0.5`` becomes ``math.isclose(a, 0.5)`` and
  ``a != 0.5`` becomes ``not math.isclose(a, 0.5)``, adding ``import
  math`` when the module lacks one.

Fixes honor suppression comments (a suppressed finding is never
rewritten), skip sites a textual rewrite cannot handle safely
(multi-line spans, chained comparisons, lambdas, same-line function
bodies), and iterate to a fixed point internally — so running ``--fix``
twice is guaranteed to be a no-op the second time (idempotence is
pinned by tests).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.engine import iter_python_files
from repro.lint.project import ImportMap
from repro.lint.registry import FileContext
from repro.lint.rules import FloatEqualityRule, MutableDefaultRule
from repro.lint.suppressions import parse_suppressions

__all__ = ["FIXABLE_RULES", "FixReport", "fix_source", "fix_paths"]

#: Rule ids ``--fix`` can repair (rules marked ``autofixable``).
FIXABLE_RULES = ("float-equality", "mutable-default")

_MAX_PASSES = 10


@dataclass
class FixReport:
    """Outcome of one ``--fix`` sweep."""

    files_changed: int = 0
    fixes: int = 0
    changed_paths: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# edit plumbing: single-line span replacements + whole-line insertions,
# both expressed in *original* coordinates and applied bottom-up.

_Replacement = tuple[int, int, int, str]  # (line0, col_start, col_end, text)
_Insertion = tuple[int, str]  # (line0 to insert before, text incl. newline)


def _apply_edits(source: str, replacements: list[_Replacement],
                 insertions: list[_Insertion]) -> str:
    lines = source.splitlines(keepends=True)
    for line0, col_start, col_end, text in sorted(replacements, reverse=True):
        line = lines[line0]
        lines[line0] = line[:col_start] + text + line[col_end:]
    for line0, text in sorted(insertions, key=lambda item: item[0], reverse=True):
        lines.insert(line0, text)
    return "".join(lines)


def _single_line(node: ast.AST) -> bool:
    end = getattr(node, "end_lineno", None)
    return end is not None and end == getattr(node, "lineno", None)


# ---------------------------------------------------------------------------
# mutable-default


def _is_fixable_mutable(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in MutableDefaultRule._MUTABLE_CALLS
    )


def _guard_anchor(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[int, str] | None:
    """(1-based line to insert before, indent) for the None-guards."""
    body = node.body
    first = body[0]
    is_docstring = (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
    )
    if is_docstring:
        if len(body) > 1:
            anchor = body[1]
            return anchor.lineno, " " * anchor.col_offset
        if first.end_lineno is not None and first.lineno > node.lineno:
            return first.end_lineno + 1, " " * first.col_offset
        return None  # docstring-only body on the def line
    if first.lineno > node.lineno:
        return first.lineno, " " * first.col_offset
    return None  # body on the def line: a textual guard cannot be inserted


def _defaults_with_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[ast.arg, ast.expr]]:
    pairs: list[tuple[ast.arg, ast.expr]] = []
    positional = [*node.args.posonlyargs, *node.args.args]
    defaults = node.args.defaults
    for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
        pairs.append((arg, default))
    for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
        if default is not None:
            pairs.append((arg, default))
    return pairs


def _fix_mutable_defaults(source: str, tree: ast.Module, suppressions,
                          replacements: list[_Replacement],
                          insertions: list[_Insertion]) -> int:
    fixes = 0
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        anchor = _guard_anchor(node)
        if anchor is None:
            continue
        insert_line, indent = anchor
        guards: list[str] = []
        for arg, default in _defaults_with_params(node):
            if not _is_fixable_mutable(default) or not _single_line(default):
                continue
            if suppressions.is_suppressed("mutable-default", default.lineno):
                continue
            default_text = ast.get_source_segment(source, default)
            if default_text is None:
                continue
            replacements.append(
                (default.lineno - 1, default.col_offset, default.end_col_offset, "None"))
            annotation = arg.annotation
            if annotation is not None and _single_line(annotation):
                annotation_text = ast.get_source_segment(source, annotation)
                if (annotation_text is not None
                        and "None" not in annotation_text
                        and not annotation_text.startswith("Optional")):
                    replacements.append(
                        (annotation.lineno - 1, annotation.col_offset,
                         annotation.end_col_offset, f"{annotation_text} | None"))
            guards.append(f"{indent}if {arg.arg} is None:\n"
                          f"{indent}    {arg.arg} = {default_text}\n")
            fixes += 1
        if guards:
            insertions.append((insert_line - 1, "".join(guards)))
    return fixes


# ---------------------------------------------------------------------------
# float-equality


def _fix_float_equality(source: str, tree: ast.Module, suppressions,
                        replacements: list[_Replacement],
                        insertions: list[_Insertion]) -> int:
    imports = ImportMap(tree)
    math_alias = None
    for bound, target in imports.aliases.items():
        if target == "math":
            math_alias = bound
            break

    fixes = 0
    fixed_spans: list[tuple[int, int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            continue
        if not _single_line(node):
            continue
        operands = [node.left, node.comparators[0]]
        if not any(isinstance(operand, ast.Constant) and isinstance(operand.value, float)
                   for operand in operands):
            continue
        if suppressions.is_suppressed("float-equality", node.comparators[0].lineno):
            continue
        span = (node.lineno - 1, node.col_offset, node.end_col_offset)
        # An outer comparison swallowing an inner one would corrupt the
        # inner edit; skip overlapping spans (the fixpoint loop in
        # fix_source picks stragglers up on the next pass).
        if any(line == span[0] and not (span[2] <= start or end <= span[1])
               for line, start, end in fixed_spans):
            continue
        left_text = ast.get_source_segment(source, node.left)
        right_text = ast.get_source_segment(source, node.comparators[0])
        if left_text is None or right_text is None:
            continue
        prefix = "not " if isinstance(node.ops[0], ast.NotEq) else ""
        module = math_alias or "math"
        replacements.append(
            (span[0], span[1], span[2],
             f"{prefix}{module}.isclose({left_text}, {right_text})"))
        fixed_spans.append(span)
        fixes += 1

    if fixes and math_alias is None:
        insertions.append((_import_insert_line(tree) - 1, "import math\n"))
    return fixes


def _import_insert_line(tree: ast.Module) -> int:
    """1-based line to insert ``import math`` before."""
    for node in tree.body:
        if (isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            continue  # module docstring
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        return node.lineno
    last = tree.body[-1] if tree.body else None
    return (last.end_lineno or last.lineno) + 1 if last is not None else 1


# ---------------------------------------------------------------------------
# entry points


def fix_source(
    source: str,
    display_path: str = "<string>",
    select: Iterable[str] | None = None,
) -> tuple[str, int]:
    """Apply the autofixes to one module's source.

    Returns ``(new_source, fix_count)``; iterates internally until no
    further fix applies, so a second call over the result is always a
    no-op.
    """
    wanted = set(FIXABLE_RULES if select is None else select) & set(FIXABLE_RULES)
    context = FileContext(display_path=display_path, source=source,
                          parts=tuple(Path(display_path).parts))
    total = 0
    for _ in range(_MAX_PASSES):
        try:
            tree = ast.parse(source, filename=display_path)
        except SyntaxError:
            return source, total
        suppressions = parse_suppressions(source)
        replacements: list[_Replacement] = []
        insertions: list[_Insertion] = []
        fixes = 0
        if "mutable-default" in wanted:
            fixes += _fix_mutable_defaults(source, tree, suppressions,
                                           replacements, insertions)
        if "float-equality" in wanted and FloatEqualityRule.applies_to(context):
            fixes += _fix_float_equality(source, tree, suppressions,
                                         replacements, insertions)
        if fixes == 0:
            break
        source = _apply_edits(source, replacements, insertions)
        total += fixes
    return source, total


def fix_paths(paths: Iterable[str | Path],
              select: Iterable[str] | None = None) -> FixReport:
    """Apply the autofixes in place to every Python file under ``paths``."""
    report = FixReport()
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        fixed, count = fix_source(source, display_path=str(path), select=select)
        if count and fixed != source:
            path.write_text(fixed, encoding="utf-8")
            report.files_changed += 1
            report.fixes += count
            report.changed_paths.append(str(path))
    return report
