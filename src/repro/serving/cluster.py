"""Sharded multi-replica serving cluster (the §3.5.2 deployment at scale).

One :class:`~repro.serving.deployment.CosmoService` replica caps out at
its own simulated service rate; production COSMO serves heavy traffic by
sharding it.  :class:`CosmoCluster` composes the pieces this repo already
has into that deployment:

* **sharding** — a :class:`~repro.serving.router.ConsistentHashRouter`
  gives every query a stable home replica (cache locality: a query's
  cache entry and pending-queue slot live on one shard) with minimal
  remapping when a replica is drained;
* **failover** — each replica's circuit breaker is consulted *read-only*
  (:attr:`~repro.serving.resilience.CircuitBreaker.cooling_down`); while
  a breaker cools down, that replica's traffic walks to the next replica
  on the ring instead of queueing behind a dead generator;
* **adaptive batching** — :class:`AdaptiveBatchScheduler` flushes a
  replica's pending-miss queue when it reaches ``max_batch_size`` *or*
  when the oldest miss has waited ``max_batch_delay_s``, replacing the
  fixed batch cadence a single service needs a driver loop for;
* **admission control** — when cluster-wide pending depth exceeds
  ``max_queue_depth``, new misses are served from the degraded path
  without enqueueing (shed, not dropped: every request still gets an
  answer and is counted exactly once, so the accounting invariant
  ``served_fresh + degraded + fallbacks == requests`` holds cluster-wide).

Time is modeled as a parallel discrete-event simulation: the cluster's
own :class:`~repro.serving.clock.SimClock` is the *arrival* clock (the
driver advances it between requests), while each replica runs on its own
clock that tracks when that shard becomes free.  Dispatching a request
synchronizes the replica clock forward to the arrival time (idle shard)
or leaves it ahead (busy shard — the difference is queueing delay, folded
into the returned :class:`~repro.serving.api.ServeResult.latency_s`).
Everything is deterministic: same seed, same traffic, same bytes out.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, replace

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import TailSampler
from repro.obs.tracing import TraceContext, Tracer, make_trace_id
from repro.serving.api import ServeOutcome, ServeRequest, ServeResult
from repro.serving.clock import SimClock
from repro.serving.deployment import CosmoService
from repro.serving.router import ConsistentHashRouter

__all__ = ["ClusterConfig", "AdaptiveBatchScheduler", "CosmoCluster"]


class _HeldClock:
    """Explicit-time clock for spans that straddle two real clocks.

    The cluster's request span must cover exactly the end-to-end charged
    window ``[arrival, start + service latency]``, but no single clock
    traverses that interval (the arrival clock stands still while the
    replica clock serves).  The cluster times its request spans on this
    holder instead, setting ``value`` at each boundary it crosses.
    """

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = value

    def now(self) -> float:
        return self.value


#: Shared no-op scope for traced requests with no event log attached —
#: ``nullcontext`` holds no state, so one instance serves every request.
_NULL_SCOPE = nullcontext()


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and policies of one :class:`CosmoCluster`.

    ``max_batch_delay_s`` bounds miss-to-batch staleness per replica;
    ``max_queue_depth`` is the cluster-wide pending bound past which
    admission control sheds misses to the degraded path; ``failover``
    can be switched off to measure what breaker-blind routing costs;
    ``trace_requests`` gates per-request distributed tracing (span
    construction and trace-context propagation) — switch it off for the
    bare arm of the tracing-overhead bench.  Tracing never changes what
    a request is charged or counted: span bookkeeping advances no clock
    and touches no metric.
    """

    n_replicas: int = 2
    vnodes: int = 64
    max_batch_size: int = 32
    max_batch_delay_s: float = 30.0
    max_queue_depth: int = 500
    failover: bool = True
    trace_requests: bool = True
    seed: int = 0
    name: str = "cluster"

    def __post_init__(self):
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be at least 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_batch_delay_s <= 0:
            raise ValueError("max_batch_delay_s must be positive")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")


class AdaptiveBatchScheduler:
    """Size-or-deadline flush triggers for per-replica miss queues.

    A replica flushes when its pending queue reaches ``max_batch_size``
    ("size" trigger — the batch is worth the generator call) or when its
    *oldest* pending miss has waited ``max_batch_delay_s`` ("deadline"
    trigger — bounded staleness even on a cold shard).  The scheduler
    only tracks timestamps; the cluster owns the actual flush.

    The scheduler keeps one enqueue tick per pending item (a deque,
    oldest first — matching the cache's oldest-first flush order), so
    the deadline trigger always measures the surviving oldest item's
    *own* wait.  Two historical bugs this fixes: items enqueued
    mid-window used to inherit the window's first timestamp, and items
    left over after a partial flush were re-stamped at the flush tick —
    both under-charged queueing delay and could stretch a mid-window
    item's staleness to nearly twice ``max_batch_delay_s``.
    """

    def __init__(self, max_batch_size: int = 32, max_batch_delay_s: float = 30.0):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_batch_delay_s <= 0:
            raise ValueError("max_batch_delay_s must be positive")
        self.max_batch_size = max_batch_size
        self.max_batch_delay_s = max_batch_delay_s
        #: replica → enqueue tick of each still-pending item, oldest first.
        self._pending_since: dict[str, deque[float]] = {}

    def note_pending(self, replica: str, now: float,
                     pending: int | None = None) -> None:
        """Record that ``replica`` has pending work as of ``now``.

        With ``pending`` given, the tracked ticks are synchronized to
        that queue length: shrinkage pops the oldest ticks (the cache
        processes oldest-first), growth stamps each new item ``now``.
        Without it, only the window's first item is stamped (the
        pre-per-item-bookkeeping behavior, kept for callers that track
        a single deadline window by hand).
        """
        ticks = self._pending_since.setdefault(replica, deque())
        if pending is None:
            if not ticks:
                ticks.append(now)
            return
        while len(ticks) > pending:
            ticks.popleft()
        while len(ticks) < pending:
            ticks.append(now)

    def oldest_wait_s(self, replica: str, now: float) -> float:
        """How long the replica's oldest pending item has waited."""
        ticks = self._pending_since.get(replica)
        if not ticks:
            return 0.0
        return now - ticks[0]

    def should_flush(self, replica: str, pending: int, now: float) -> str | None:
        """The trigger that fires for this queue state, if any."""
        if pending <= 0:
            self._pending_since.pop(replica, None)
            return None
        if pending >= self.max_batch_size:
            return "size"
        ticks = self._pending_since.get(replica)
        if ticks and now - ticks[0] >= self.max_batch_delay_s:
            return "deadline"
        return None

    def flushed(self, replica: str, remaining: int = 0) -> None:
        """Drop the flushed (oldest) items' ticks after a flush.

        ``remaining`` is the queue length the flush left behind; the
        survivors keep their original enqueue ticks so the next deadline
        check charges their full wait (default 0 — the flush drained the
        queue).
        """
        ticks = self._pending_since.get(replica)
        if ticks is None:
            return
        while len(ticks) > remaining:
            ticks.popleft()
        if not ticks:
            self._pending_since.pop(replica, None)


class CosmoCluster:
    """N service replicas behind a consistent-hash router.

    ``generator_factory(replica_index)`` builds one generator per
    replica — each shard owns its model instance, so per-replica fault
    injection and breaker state stay independent.  Extra
    ``service_kwargs`` pass through to every
    :class:`~repro.serving.deployment.CosmoService` (retry policy,
    fallback response, validators, ...).

    All replicas share one :class:`~repro.obs.metrics.MetricsRegistry`:
    per-replica serving metrics are distinguished by their ``service``
    label (``<name>-r0``, ``<name>-r1``, ...), cluster-level metrics by
    a ``cluster`` label.  Each replica traces on its own clock and the
    cluster traces arrivals on the arrival clock; merge them with
    :func:`~repro.obs.tracing.chrome_trace` for one timeline.

    The cluster consumes only the structured serving API:
    :meth:`handle` takes a :class:`~repro.serving.api.ServeRequest`
    (or a bare query string for convenience) and returns the replica's
    :class:`~repro.serving.api.ServeResult` with shard queueing delay
    folded into ``latency_s``.
    """

    def __init__(
        self,
        generator_factory,
        config: ClusterConfig | None = None,
        clock: SimClock | None = None,
        registry: MetricsRegistry | None = None,
        event_log: EventLog | None = None,
        sampler: TailSampler | None = None,
        **service_kwargs,
    ):
        self.config = config or ClusterConfig()
        cfg = self.config
        self.clock = clock or SimClock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sampler = sampler
        self.tracer = Tracer(clock=self.clock.now, name=cfg.name,
                             sampler=sampler)
        self.event_log = event_log
        self._started_at = self.clock.now()
        replica_ids = [f"{cfg.name}-r{i}" for i in range(cfg.n_replicas)]
        self.router = ConsistentHashRouter(replica_ids, vnodes=cfg.vnodes,
                                           seed=cfg.seed)
        if event_log is not None:
            # Drain/restore events are timed on the arrival clock — the
            # operator acts at cluster time, not on any one replica's.
            self.router.attach_event_log(event_log, clock=self.clock.now,
                                         component=cfg.name)
        self.router.attach_tracer(self.tracer)
        self.scheduler = AdaptiveBatchScheduler(
            max_batch_size=cfg.max_batch_size,
            max_batch_delay_s=cfg.max_batch_delay_s,
        )
        self._batch_seq = 0
        self.services: dict[str, CosmoService] = {}
        for index, replica_id in enumerate(replica_ids):
            replica_clock = self.clock.fork()
            self.services[replica_id] = CosmoService(
                generator_factory(index),
                clock=replica_clock,
                seed=cfg.seed + index,
                registry=self.registry,
                tracer=Tracer(clock=replica_clock.now, name=replica_id,
                              sampler=sampler),
                event_log=event_log,
                name=replica_id,
                **service_kwargs,
            )
        labels = {"cluster": cfg.name}
        self._requests = self.registry.counter(
            "cluster_requests_total", "requests handled by the cluster",
            ("cluster",)).labels(**labels)
        self._failovers = self.registry.counter(
            "cluster_failovers_total",
            "requests re-routed off their home replica (breaker cooling down)",
            ("cluster",)).labels(**labels)
        self._shed = self.registry.counter(
            "cluster_shed_total",
            "requests admission control served without enqueueing",
            ("cluster",)).labels(**labels)
        self._flushes = self.registry.counter(
            "cluster_batch_flushes_total", "adaptive batch flushes by trigger",
            ("cluster", "trigger"))
        self._depth_gauge = self.registry.gauge(
            "cluster_queue_depth", "cluster-wide pending-miss queue depth",
            ("cluster",)).labels(**labels)
        self._latency = self.registry.histogram(
            "cluster_request_latency_seconds",
            "end-to-end simulated latency including shard queueing delay",
            ("cluster",)).labels(**labels)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _select(self, key: str) -> tuple[str, bool]:
        """Pick the serving replica; True when it is a failover target.

        Walks the key's ring preference order past replicas whose
        breakers are cooling down.  If *every* active replica is cooling
        down there is nowhere better to go — the home replica takes the
        request and serves it from its degraded path.
        """
        order = self.router.preference(key)
        if not self.config.failover:
            return order[0], False
        for replica_id in order:
            breaker = self.services[replica_id].breaker
            if breaker is not None and breaker.cooling_down:
                continue
            return replica_id, replica_id != order[0]
        return order[0], False

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def handle(self, request: ServeRequest | str) -> ServeResult:
        """Serve one request through the sharded deployment.

        Arrival time is the cluster clock's ``now()`` — the driver
        advances it between calls to model the offered load.  The
        returned result is the replica's, with ``latency_s`` replaced by
        the end-to-end figure (shard queueing delay + service latency).

        With ``trace_requests`` on (the default) the request runs under
        a deterministic :class:`~repro.obs.tracing.TraceContext` — minted
        from the request sequence number and the query, or propagated
        from ``request.trace`` when the caller supplied one — and every
        hop (routing, queueing, cache, degradation, generator attempts,
        the batch flush it triggers) contributes spans to one trace tree.
        The traced and bare paths perform identical clock and metric
        operations, so accounting is byte-identical either way.
        """
        if isinstance(request, str):
            request = ServeRequest(query=request)
        self._requests.inc()
        if not self.config.trace_requests:
            return self._handle_bare(request)
        context = request.trace or TraceContext(
            make_trace_id(int(self._requests.value), request.query))
        return self._handle_traced(request, context)

    def _handle_bare(self, request: ServeRequest) -> ServeResult:
        """The untraced request path (``trace_requests=False``)."""
        shed = self.queue_depth >= self.config.max_queue_depth
        if shed:
            self._shed.inc()
        replica_id, failed_over = self._select(request.query)
        if failed_over:
            self._failovers.inc()
        service = self.services[replica_id]
        arrival = self.clock.now()
        start = max(arrival, service.clock.now())
        service.clock.sleep_until(start)
        result = service.serve(request, allow_enqueue=not shed)
        end_to_end = (start - arrival) + result.latency_s
        self._latency.observe(end_to_end)
        self._maybe_flush(replica_id)
        self._depth_gauge.set(self.queue_depth)
        return replace(result, latency_s=end_to_end)

    def _handle_traced(self, request: ServeRequest,
                       context: TraceContext) -> ServeResult:
        """The traced request path: same operations as
        :meth:`_handle_bare`, wrapped in a ``cluster.request`` span tree.

        The root span is timed on a :class:`_HeldClock` so its window is
        exactly ``[arrival, start + service latency]`` — the end-to-end
        latency the request is charged — with a ``cluster.queueing``
        child covering ``[arrival, start]``.  Events emitted mid-request
        are stamped with the trace id via the event log's trace scope.
        """
        arrival = self.clock.now()
        held = _HeldClock(arrival)
        log_scope = (self.event_log.trace_scope(context.trace_id)
                     if self.event_log is not None else _NULL_SCOPE)
        with log_scope, self.tracer.attach(context, clock=held.now):
            with self.tracer.span("cluster.request",
                                  query=request.query) as root:
                shed = self.queue_depth >= self.config.max_queue_depth
                if shed:
                    self._shed.inc()
                    root.set_attribute("shed", True)
                replica_id, failed_over = self._select(request.query)
                if failed_over:
                    self._failovers.inc()
                    root.set_attribute("failover", True)
                service = self.services[replica_id]
                start = max(arrival, service.clock.now())
                if start > arrival:
                    with self.tracer.span("cluster.queueing",
                                          replica=replica_id):
                        service.clock.sleep_until(start)
                        held.value = start
                else:
                    # No shard backlog: the request dispatches on arrival
                    # and a zero-width queueing span would only cost hot-
                    # path time (the stage breakdown reports queueing 0).
                    service.clock.sleep_until(start)
                # The child context travels out-of-band (the ``trace``
                # keyword) rather than via a copied request: frozen-
                # dataclass construction is measurable at per-request
                # rates (bench_trace_overhead pins the traced/bare ratio).
                result = service.serve(
                    request, allow_enqueue=not shed,
                    trace=context.child(self.tracer.ref(root)),
                )
                end_to_end = (start - arrival) + result.latency_s
                held.value = start + result.latency_s
                attrs = root.attributes
                attrs["replica"] = result.replica
                attrs["outcome"] = result.outcome.value
                attrs["source"] = result.source
                self._latency.observe(end_to_end, exemplar=context.trace_id)
                self._maybe_flush(replica_id, context)
            self._depth_gauge.set(self.queue_depth)
        if self.sampler is not None:
            self.sampler.finish(
                context.trace_id, ts=held.value, duration_s=end_to_end,
                flagged=result.outcome is not ServeOutcome.FRESH,
            )
        return replace(result, latency_s=end_to_end)

    def handle_batch(self, requests: list[ServeRequest | str],
                     batch_id: str | None = None) -> list[ServeResult]:
        """Serve one arrival window of requests through the cluster.

        The batch-first ingress: every request in the window shares one
        arrival tick (the cluster clock's ``now()`` — the driver
        advances it between windows), the admission-control shed
        decision is sampled once at that tick, and requests are routed
        then served **grouped by home replica** — each group goes down
        in a single :meth:`~repro.serving.deployment.CosmoService.serve_batch`
        call, so a replica built with a
        :class:`~repro.serving.deployment.BatchCostModel` charges one
        amortized window instead of ``len(group)`` sequential serves.

        Results come back in request order.  ``latency_s`` is end-to-end
        (shard queueing delay + service latency) exactly as
        :meth:`handle` computes it, and every result's ``batch_index``
        is rewritten to its position in *this* window (``batch_id`` is
        shared by all of them), so the pair stays unique even though the
        window split across replicas.  Request accounting is identical
        to ``len(requests)`` :meth:`handle` calls: each request counts
        once, cluster-wide.

        Tracing happens at batch granularity: with ``trace_requests``
        on, each replica group runs under one ``cluster.batch`` span
        (per-item attribution flows through batch_id/batch_index rather
        than per-item span trees — that is the point of the batch path).
        """
        if not requests:
            return []
        cfg = self.config
        self._batch_seq += 1
        if batch_id is None:
            batch_id = f"{cfg.name}-b{self._batch_seq}"
        typed = [ServeRequest(query=request) if isinstance(request, str)
                 else request for request in requests]
        arrival = self.clock.now()
        self._requests.inc(len(typed))
        shed = self.queue_depth >= cfg.max_queue_depth
        if shed:
            self._shed.inc(len(typed))
        groups: dict[str, list[int]] = {}
        for index, request in enumerate(typed):
            replica_id, failed_over = self._select(request.query)
            if failed_over:
                self._failovers.inc()
            groups.setdefault(replica_id, []).append(index)
        results: list[ServeResult | None] = [None] * len(typed)
        for replica_id, indices in groups.items():
            service = self.services[replica_id]
            group = [typed[i] for i in indices]
            start = max(arrival, service.clock.now())
            if cfg.trace_requests:
                context = TraceContext(make_trace_id(
                    int(self._requests.value), f"{batch_id}:{replica_id}"))
                held = _HeldClock(arrival)
                with self.tracer.attach(context, clock=held.now):
                    with self.tracer.span(
                        "cluster.batch", batch=batch_id, replica=replica_id,
                        items=len(group), shed=shed,
                    ) as span:
                        service.clock.sleep_until(start)
                        held.value = start
                        with service.tracer.attach(
                            context.child(self.tracer.ref(span))
                        ):
                            group_results = service.serve_batch(
                                group, batch_id=batch_id,
                                allow_enqueue=not shed,
                            )
                        held.value = service.clock.now()
            else:
                service.clock.sleep_until(start)
                group_results = service.serve_batch(
                    group, batch_id=batch_id, allow_enqueue=not shed)
            for index, result in zip(indices, group_results):
                end_to_end = (start - arrival) + result.latency_s
                self._latency.observe(end_to_end)
                results[index] = replace(result, latency_s=end_to_end,
                                         batch_index=index)
            self._maybe_flush(replica_id)
        self._depth_gauge.set(self.queue_depth)
        return results

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def _maybe_flush(self, replica_id: str,
                     context: TraceContext | None = None) -> None:
        service = self.services[replica_id]
        pending = service.cache.pending_size
        now = service.clock.now()
        if pending > 0:
            self.scheduler.note_pending(replica_id, now, pending=pending)
        trigger = self.scheduler.should_flush(replica_id, pending, now)
        if trigger is not None:
            self._flush_replica(replica_id, trigger, context)

    def _flush_replica(self, replica_id: str, trigger: str,
                       context: TraceContext | None = None) -> int:
        service = self.services[replica_id]
        with self.tracer.span("cluster.flush", replica=replica_id,
                              trigger=trigger) as span:
            # When the flush fires inside a traced request, hang the
            # replica's batch spans under this flush span so the whole
            # generator/retry subtree stays in the request's trace.
            attach = (service.tracer.attach(
                          context.child(self.tracer.ref(span)))
                      if context is not None else nullcontext())
            with attach:
                installed = service.run_batch(
                    max_queries=self.config.max_batch_size)
            span.set_attribute("installed", installed)
        self._flushes.labels(cluster=self.config.name, trigger=trigger).inc()
        self.scheduler.flushed(replica_id, remaining=service.cache.pending_size)
        if self.event_log is not None:
            self.event_log.emit(
                "cluster.flush", ts=service.clock.now(),
                component=self.config.name, replica=replica_id,
                trigger=trigger, installed=installed,
            )
        return installed

    def flush(self) -> int:
        """Force-flush every replica's pending queue (end of drive)."""
        installed = 0
        for replica_id, service in self.services.items():
            while service.cache.pending_size > 0:
                batch_installed = self._flush_replica(replica_id, "forced")
                installed += batch_installed
                if batch_installed == 0:
                    break  # breaker refused or all failed; don't spin
        return installed

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def preload_yearly(self, entries: dict[str, str]) -> None:
        """Load yearly cache entries onto each key's home replica."""
        shards: dict[str, dict[str, str]] = {}
        for query, response in entries.items():
            shards.setdefault(self.router.route(query), {})[query] = response
        for replica_id, shard in shards.items():
            self.services[replica_id].cache.preload_yearly(shard)

    def daily_refresh(self, refresh_stale: bool = True) -> dict[str, dict[str, int]]:
        """Run every replica's daily refresh, then barrier all clocks.

        Each replica sleeps to its own next day boundary inside
        ``daily_refresh``; the barrier then advances every clock
        (replicas *and* the arrival clock) to the cluster-wide maximum
        so the next day starts synchronized.
        """
        reports: dict[str, dict[str, int]] = {}
        with self.tracer.span("cluster.daily_refresh", day=self.clock.day):
            for replica_id, service in self.services.items():
                reports[replica_id] = service.daily_refresh(refresh_stale)
            horizon = max(self.clock.now(),
                          *(s.clock.now() for s in self.services.values()))
            self.clock.sleep_until(horizon)
            for service in self.services.values():
                service.clock.sleep_until(horizon)
        return reports

    def drain(self, replica_id: str) -> None:
        """Take a replica out of rotation (its keys move to ring neighbors)."""
        self.router.drain(replica_id)

    def restore(self, replica_id: str) -> None:
        """Return a drained replica to rotation."""
        self.router.restore(replica_id)

    # ------------------------------------------------------------------
    # Snapshot deployment
    # ------------------------------------------------------------------
    def swap_snapshot(self, replica_id: str, snapshot) -> int:
        """Swap one replica onto a knowledge snapshot (cache warm +
        generator repoint in one atomic step); the blue/green rollout's
        per-replica move.  Returns invalidated cache entries."""
        service = self.services[replica_id]
        with self.tracer.span("cluster.swap_snapshot", replica=replica_id,
                              version=snapshot.manifest.version) as span:
            invalidated = service.swap_snapshot(snapshot)
            span.set_attribute("invalidated", invalidated)
        return invalidated

    def install_snapshot(self, snapshot) -> int:
        """Swap every replica onto ``snapshot`` at once — the initial
        install, or the naive restart-style deploy the rollout bench
        compares against."""
        return sum(self.swap_snapshot(replica_id, snapshot)
                   for replica_id in self.router.replicas)

    def snapshot_versions(self) -> dict[str, str | None]:
        """Authoritative snapshot version per replica."""
        return {replica_id: service.snapshot_version
                for replica_id, service in self.services.items()}

    def redrive_dead_letters(self) -> int:
        """Immediately re-drive every replica's dead-letter queue."""
        return sum(service.redrive_dead_letters()
                   for service in self.services.values())

    # ------------------------------------------------------------------
    # Readouts
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Cluster-wide pending-miss count (the admission-control input)."""
        return sum(s.cache.pending_size for s in self.services.values())

    @property
    def busy_horizon_s(self) -> float:
        """Simulated seconds until the busiest replica goes idle — the
        cluster's makespan, the denominator of its throughput."""
        horizon = max(s.clock.now() for s in self.services.values())
        return max(horizon, self.clock.now()) - self._started_at

    @property
    def requests(self) -> int:
        return sum(s.metrics.requests for s in self.services.values())

    @property
    def availability(self) -> float:
        """Fraction of requests answered with knowledge, cluster-wide."""
        total = self.requests
        if total == 0:
            return 1.0
        with_knowledge = sum(
            s.metrics.served_fresh + s.metrics.degraded_serves
            for s in self.services.values()
        )
        return with_knowledge / total

    def percentile(self, q: float) -> float:
        """Latency percentile over end-to-end (queueing-inclusive) times."""
        return self._latency.percentile(q)

    def metrics_totals(self) -> dict[str, int]:
        """Cluster-wide request accounting (sums over replicas)."""
        totals = {"requests": 0, "served_fresh": 0, "degraded_serves": 0,
                  "fallbacks": 0}
        for service in self.services.values():
            totals["requests"] += service.metrics.requests
            totals["served_fresh"] += service.metrics.served_fresh
            totals["degraded_serves"] += service.metrics.degraded_serves
            totals["fallbacks"] += service.metrics.fallbacks
        totals["handled"] = int(self._requests.value)
        totals["failovers"] = int(self._failovers.value)
        totals["shed"] = int(self._shed.value)
        return totals
