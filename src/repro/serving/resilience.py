"""Retry, circuit breaking, and resilient generation for serving.

The serving stack's availability under generator faults rests on three
pieces composed by :class:`ResilientGenerator`:

* :class:`RetryPolicy` — exponential backoff with jitter under a
  per-request deadline budget;
* :class:`CircuitBreaker` — a failure-rate breaker (closed → open →
  half-open) that fails fast during sustained outages and probes its way
  back to closed;
* output validation — garbage generations (see
  :mod:`repro.serving.faults`) are rejected and retried per prompt.

Every wait — backoff between attempts, generation latency, breaker
cooldown — is charged to the :class:`~repro.serving.clock.SimClock`.
Nothing here sleeps on the wall clock, so chaos scenarios covering
simulated hours run in milliseconds and replay bit-identically.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass
from enum import Enum

from repro.llm.interface import Generation, GenerationBatch
from repro.serving.clock import SimClock
from repro.serving.faults import GeneratorFault
from repro.utils.rng import spawn_rng

__all__ = [
    "RetryPolicy",
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "RetriesExhausted",
    "BatchOutcome",
    "ResilientGenerator",
]


class CircuitOpenError(RuntimeError):
    """A call was refused because the circuit breaker is open."""


class RetriesExhausted(RuntimeError):
    """A call failed after consuming the full retry budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter under a per-request deadline.

    Attempt ``n`` (1-based) is preceded by a backoff of
    ``min(max_backoff_s, base_backoff_s * backoff_multiplier**(n - 2))``
    spread by ``±jitter``; no attempt starts once ``deadline_s`` of
    simulated time has been spent on the request.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.25
    deadline_s: float = 30.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_s(self, retry: int, rng=None) -> float:
        """Backoff before the ``retry``-th retry (1 = first retry)."""
        if retry < 1:
            return 0.0
        raw = min(
            self.max_backoff_s,
            self.base_backoff_s * self.backoff_multiplier ** (retry - 1),
        )
        if rng is None or self.jitter == 0.0:
            return raw
        spread = self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(0.0, raw * (1.0 + spread))

    def allows(self, attempts_made: int, elapsed_s: float) -> bool:
        """Whether another attempt fits the attempt and deadline budgets."""
        return attempts_made < self.max_attempts and elapsed_s < self.deadline_s


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate circuit breaker on simulated time.

    CLOSED: calls flow and outcomes enter a sliding window; once the
    window holds at least ``min_calls`` outcomes and the failure rate
    reaches ``failure_threshold``, the breaker trips OPEN.  OPEN: calls
    are refused until ``cooldown_s`` of simulated time elapses, after
    which the next :meth:`allow` moves to HALF_OPEN.  HALF_OPEN: trial
    calls are admitted; ``half_open_probes`` consecutive successes close
    the breaker, any failure re-opens it and restarts the cooldown.
    """

    def __init__(
        self,
        clock: SimClock,
        failure_threshold: float = 0.5,
        window: int = 20,
        min_calls: int = 5,
        cooldown_s: float = 120.0,
        half_open_probes: int = 2,
    ):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self.state = BreakerState.CLOSED
        self.opens = 0
        self.closes = 0
        self.refusals = 0
        #: ``(simulated time, new state)`` for every transition.
        self.transitions: list[tuple[float, BreakerState]] = []
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._opened_at = 0.0
        self._probe_successes = 0
        self._state_gauges: dict[BreakerState, object] = {}
        self._transition_counters: dict[BreakerState, object] = {}
        self._refusal_counter = None
        self._event_log = None
        self._event_component = "cosmo"

    # ------------------------------------------------------------------
    def attach_registry(self, registry, name: str = "cosmo") -> None:
        """Mirror breaker state and counts into a metrics registry.

        Publishes ``serving_breaker_state{breaker,state}`` as a 0/1 enum
        gauge, ``serving_breaker_transitions_total{breaker,to}`` for
        open/close transitions, and
        ``serving_breaker_refusals_total{breaker}``.  Counts accrued
        before attachment are synced in, so attaching late never loses
        history.
        """
        state_gauge = registry.gauge(
            "serving_breaker_state",
            "1 for the breaker's current state, 0 for the others",
            ("breaker", "state"),
        )
        self._state_gauges = {
            state: state_gauge.labels(breaker=name, state=state.value)
            for state in BreakerState
        }
        transitions = registry.counter(
            "serving_breaker_transitions_total",
            "breaker state transitions by destination state",
            ("breaker", "to"),
        )
        self._transition_counters = {
            BreakerState.OPEN: transitions.labels(breaker=name, to="open"),
            BreakerState.CLOSED: transitions.labels(breaker=name, to="closed"),
        }
        self._refusal_counter = registry.counter(
            "serving_breaker_refusals_total",
            "calls refused while the breaker was open",
            ("breaker",),
        ).labels(breaker=name)
        self._transition_counters[BreakerState.OPEN].inc(self.opens)
        self._transition_counters[BreakerState.CLOSED].inc(self.closes)
        self._refusal_counter.inc(self.refusals)
        self._publish_state()

    def attach_event_log(self, event_log, component: str = "cosmo") -> None:
        """Publish every subsequent state transition into a structured
        :class:`~repro.obs.events.EventLog` (``breaker.open`` /
        ``breaker.half-open`` / ``breaker.closed``), timestamped on this
        breaker's own clock.
        """
        self._event_log = event_log
        self._event_component = component

    def _publish_state(self) -> None:
        for state, gauge in self._state_gauges.items():
            gauge.set(1 if state is self.state else 0)

    # ------------------------------------------------------------------
    def _set_state(self, new: BreakerState) -> None:
        if new is self.state:
            return
        self.state = new
        self.transitions.append((self._clock.now(), new))
        if new is BreakerState.OPEN:
            self.opens += 1
        elif new is BreakerState.CLOSED:
            self.closes += 1
        counter = self._transition_counters.get(new)
        if counter is not None:
            counter.inc()
        if self._event_log is not None:
            self._event_log.emit(
                f"breaker.{new.value}", ts=self._clock.now(),
                component=self._event_component,
                opens=self.opens, refusals=self.refusals,
            )
        self._publish_state()

    def _trip(self) -> None:
        self._opened_at = self._clock.now()
        self._outcomes.clear()
        self._set_state(BreakerState.OPEN)

    def force_open(self) -> None:
        """Trip the breaker now (operator action / chaos injection)."""
        self._trip()

    @property
    def cooling_down(self) -> bool:
        """True while the breaker is OPEN and inside its cooldown.

        Unlike :meth:`allow` this is a pure read: it neither counts a
        refusal nor transitions to HALF_OPEN, so the cluster can consult
        it when picking a failover replica without disturbing breaker
        state.  Once the cooldown elapses this turns False, making the
        replica routable again so the next real call can probe it.
        """
        return (self.state is BreakerState.OPEN
                and self._clock.now() - self._opened_at < self.cooldown_s)

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed right now."""
        if self.state is BreakerState.OPEN:
            if self._clock.now() - self._opened_at >= self.cooldown_s:
                self._probe_successes = 0
                self._set_state(BreakerState.HALF_OPEN)
                return True
            self.refusals += 1
            if self._refusal_counter is not None:
                self._refusal_counter.inc()
            return False
        return True

    def record_success(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self._outcomes.clear()
                self._set_state(BreakerState.CLOSED)
        else:
            self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._trip()
            return
        self._outcomes.append(False)
        if len(self._outcomes) >= self.min_calls and self.failure_rate >= self.failure_threshold:
            self._trip()

    @property
    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return 1.0 - sum(self._outcomes) / len(self._outcomes)


#: Historical name for the unified batched-generation result type, kept
#: for importers of the resilience layer; the canonical definition lives
#: with the :class:`~repro.llm.interface.KnowledgeGenerator` protocol.
BatchOutcome = GenerationBatch


def _default_validator(text: str) -> bool:
    return bool(text.strip())


class ResilientGenerator:
    """Retry + circuit breaking + output validation around any batched
    generator.

    Drop-in for the :class:`~repro.llm.interface.KnowledgeGenerator`
    protocol: :meth:`generate_batch` returns a
    :class:`~repro.llm.interface.GenerationBatch` with per-prompt
    results so callers (the batch processor, the dead-letter redrive)
    can handle partial failure, while the deprecated
    ``generate_knowledge`` shim raises on failure.  Unknown attributes
    pass through to the wrapped generator.
    """

    def __init__(
        self,
        generator,
        clock: SimClock,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        validator=None,
        seed: int = 0,
        tracer=None,
    ):
        self.inner = generator
        self.clock = clock
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(clock)
        self.latency = generator.latency
        self.parameter_count = getattr(generator, "parameter_count", 0)
        self._validate = validator or _default_validator
        self._rng = spawn_rng(seed, "resilience-jitter")
        self._tracer = tracer

    def _maybe_span(self, name: str, **attributes):
        """A span context while a trace context is attached, else a no-op.

        Gating on ``active_context`` keeps untraced batch work (daily
        refresh, redrives, benches with tracing off) span-free.
        """
        if self._tracer is not None and self._tracer.active_context is not None:
            return self._tracer.span(name, **attributes)
        return nullcontext(None)

    def __getattr__(self, name):
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    # ------------------------------------------------------------------
    def generate_batch(self, prompts: list[str]) -> GenerationBatch:
        """Generate with retries; failed prompts come back as ``None``.

        A call-level fault fails the whole remaining batch for that
        attempt; a rejected (garbage) generation re-enters the next
        attempt alone.  Backoffs and generation latency both advance the
        simulated clock, and the deadline budget covers their sum.
        """
        outcome = GenerationBatch(generations=[None] * len(prompts), attempts=0)
        remaining = list(range(len(prompts)))
        started = self.clock.now()
        while remaining:
            if outcome.attempts and not self.retry.allows(
                outcome.attempts, self.clock.now() - started
            ):
                break
            if not self.breaker.allow():
                outcome.breaker_refused = True
                break
            if outcome.attempts:
                with self._maybe_span("resilience.backoff",
                                      retry=outcome.attempts):
                    wait = self.retry.backoff_s(outcome.attempts, self._rng)
                    self.clock.advance(wait)
                outcome.wait_s += wait
                outcome.retries += 1
            outcome.attempts += 1
            before = self.latency.total_simulated_s
            with self._maybe_span("resilience.attempt",
                                  attempt=outcome.attempts,
                                  prompts=len(remaining)) as span:
                try:
                    generations = self.inner.generate_batch(
                        [prompts[i] for i in remaining]
                    ).generations
                except GeneratorFault:
                    self.clock.advance(self.latency.total_simulated_s - before)
                    outcome.errors += 1
                    self.breaker.record_failure()
                    if span is not None:
                        span.set_attribute("outcome", "fault")
                    continue
                self.clock.advance(self.latency.total_simulated_s - before)
                if span is not None:
                    span.set_attribute("outcome", "ok")
            self.breaker.record_success()
            still_failed = []
            for index, generation in zip(remaining, generations):
                if self._validate(generation.text):
                    outcome.generations[index] = generation
                else:
                    outcome.rejected += 1
                    still_failed.append(index)
            remaining = still_failed
        return outcome

    def generate_knowledge(self, prompts: list[str]) -> list[Generation]:
        """Deprecated all-or-nothing shim over :meth:`generate_batch`."""
        outcome = self.generate_batch(prompts)
        if outcome.ok:
            return outcome.generations
        if outcome.breaker_refused and outcome.attempts == 0:
            raise CircuitOpenError("circuit breaker is open; call refused")
        raise RetriesExhausted(
            f"{len(outcome.failed_indices)}/{len(prompts)} prompts failed "
            f"after {outcome.attempts} attempts"
        )
