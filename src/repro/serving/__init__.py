"""Online deployment substrate (§3.5, Figure 5)."""

from repro.serving.cache import AsyncCacheStore, CacheStats
from repro.serving.clock import SimClock
from repro.serving.deployment import CosmoService, ServingMetrics
from repro.serving.feature_store import FeatureRecord, FeatureStore

__all__ = [
    "SimClock",
    "AsyncCacheStore",
    "CacheStats",
    "FeatureStore",
    "FeatureRecord",
    "CosmoService",
    "ServingMetrics",
]
