"""Online deployment substrate (§3.5, Figure 5)."""

from repro.serving.api import (
    KnowledgeGenerator,
    ServeOutcome,
    ServeRequest,
    ServeResult,
)
from repro.serving.cache import AsyncCacheStore, CacheStats
from repro.serving.clock import SimClock
from repro.serving.cluster import AdaptiveBatchScheduler, ClusterConfig, CosmoCluster
from repro.serving.deployment import (
    BatchCostModel,
    CosmoService,
    DeadLetter,
    ServingMetrics,
)
from repro.serving.faults import (
    FaultInjector,
    FaultPlan,
    FlakyGenerator,
    GeneratorError,
    GeneratorFault,
    GeneratorTimeout,
)
from repro.serving.feature_store import FeatureRecord, FeatureStore
from repro.serving.router import ConsistentHashRouter
from repro.serving.resilience import (
    BatchOutcome,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    ResilientGenerator,
    RetriesExhausted,
    RetryPolicy,
)

__all__ = [
    "SimClock",
    "KnowledgeGenerator",
    "ServeOutcome",
    "ServeRequest",
    "ServeResult",
    "ConsistentHashRouter",
    "ClusterConfig",
    "AdaptiveBatchScheduler",
    "CosmoCluster",
    "AsyncCacheStore",
    "CacheStats",
    "FeatureStore",
    "FeatureRecord",
    "BatchCostModel",
    "CosmoService",
    "ServingMetrics",
    "DeadLetter",
    "FaultPlan",
    "FaultInjector",
    "FlakyGenerator",
    "GeneratorFault",
    "GeneratorError",
    "GeneratorTimeout",
    "RetryPolicy",
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "RetriesExhausted",
    "BatchOutcome",
    "ResilientGenerator",
]
