"""The deployed COSMO service: operational flow of §3.5.2 / Figure 5.

Ties together the model (COSMO-LM), the two-layer asynchronous cache
store and the feature store, with simulated latency accounting:

* **request handling** — queries first hit the cache; hits return at
  cache latency, misses are enqueued and fall through the degradation
  chain (stale feature-store entry → last known good response →
  fallback);
* **batch processing** — pending queries are answered by the model in
  bulk through the resilience layer (retry + circuit breaker + output
  validation); queries that exhaust their retry budget land in a
  dead-letter queue;
* **daily refresh** — session logs feed back into the model (the
  feedback loop), stale features are recomputed, and the dead-letter
  queue is re-driven;
* **latency accounting** — every request is charged simulated seconds so
  p50/p99, availability and the cached-vs-direct-LLM comparison are
  measurable.

Resilience is on by default; pass ``resilience=False`` for the original
happy-path-only service (no retries, no breaker, no degraded serving) —
the baseline arm of ``benchmarks/bench_ablation_resilience.py``.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TraceContext, Tracer
from repro.serving.api import (
    SOURCE_CACHE_DAILY,
    SOURCE_CACHE_YEARLY,
    SOURCE_DIRECT,
    SOURCE_FALLBACK,
    SOURCE_FEATURE_STORE,
    SOURCE_LAST_GOOD,
    ServeOutcome,
    ServeRequest,
    ServeResult,
)
from repro.serving.cache import AsyncCacheStore
from repro.serving.clock import SimClock
from repro.serving.faults import GeneratorFault
from repro.serving.feature_store import FeatureStore
from repro.serving.resilience import (
    CircuitBreaker,
    ResilientGenerator,
    RetryPolicy,
)

__all__ = ["ServingMetrics", "DeadLetter", "BatchCostModel", "CosmoService"]

_CACHE_LATENCY_S = 0.002
_DEGRADED_LATENCY_S = 0.004


@dataclass(frozen=True)
class BatchCostModel:
    """Amortized simulated cost of one vectorized serving window.

    When a :class:`CosmoService` is built with a cost model, a
    ``serve_batch`` window of ``n`` requests is charged
    ``batch_overhead_s + n * item_cost_s`` *once* — every item in the
    window completes together when the window does, which is what a real
    vectorized lookup costs (one dispatch, per-row marginal work)
    instead of ``n`` sequential round trips.  Without a cost model
    (the default) ``serve_batch`` charges exactly what the per-item
    ``serve`` loop would — the golden equivalence suite pins the two
    paths byte-identical — so amortization is an explicit opt-in knob,
    not a silent accounting change.
    """

    batch_overhead_s: float = 0.002
    item_cost_s: float = 0.0002

    def __post_init__(self):
        if self.batch_overhead_s < 0 or self.item_cost_s < 0:
            raise ValueError("batch costs must be non-negative")

    def window_latency_s(self, n_items: int) -> float:
        """Simulated duration of one window of ``n_items`` requests."""
        if n_items <= 0:
            return 0.0
        return self.batch_overhead_s + n_items * self.item_cost_s

#: attribute name → (metric name, help) for the integer request counters.
_COUNTER_SPECS = {
    "batch_runs": ("serving_batch_runs_total", "batch processing cycles executed"),
    "batch_queries_processed": (
        "serving_batch_queries_processed_total", "queries answered by batch runs"),
    "served_fresh": ("serving_served_fresh_total", "requests served fresh (cache or direct)"),
    "degraded_serves": ("serving_degraded_serves_total", "requests served stale (degraded)"),
    "fallbacks": ("serving_fallbacks_total", "requests answered with the fallback response"),
    "retries": ("serving_retries_total", "generator attempts beyond the first"),
    "generator_failures": ("serving_generator_failures_total", "generator call-level faults"),
    "rejected_generations": (
        "serving_rejected_generations_total", "generations rejected by output validation"),
    "breaker_refusals": (
        "serving_batch_breaker_refusals_total", "batch runs refused by the breaker"),
    "dead_lettered": ("serving_dead_lettered_total", "queries moved to the dead-letter queue"),
    "redriven": ("serving_redriven_total", "dead-lettered queries recovered on redrive"),
}


class ServingMetrics:
    """Latency, throughput and availability accounting for the service.

    Every request is counted exactly once as fresh, degraded, or a
    fallback, so ``served_fresh + degraded_serves + fallbacks ==
    requests`` always holds (the chaos property tests rely on it).

    All counters are registry-backed (see :mod:`repro.obs.metrics`):
    attribute reads and ``+=`` writes keep working, but the same values
    are visible through the registry's exporters, and request latency is
    a streaming fixed-bucket histogram — bounded memory no matter how
    many requests the service absorbs.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 service: str = "cosmo"):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.service = service
        labels = {"service": service}
        self._counters = {
            attr: self.registry.counter(name, help, ("service",)).labels(**labels)
            for attr, (name, help) in _COUNTER_SPECS.items()
        }
        self._counters["backoff_wait_s"] = self.registry.counter(
            "serving_backoff_wait_seconds_total",
            "simulated seconds spent in retry backoff", ("service",),
        ).labels(**labels)
        self.latency = self.registry.histogram(
            "serving_request_latency_seconds",
            "end-to-end simulated request latency", ("service",),
        ).labels(**labels)

    def observe_latency(self, seconds: float, trace_id: str | None = None) -> None:
        """Record one request latency; ``trace_id`` attaches an exemplar
        to the histogram bucket the observation lands in."""
        self.latency.observe(seconds, exemplar=trace_id)

    @property
    def requests(self) -> int:
        return self.served_fresh + self.degraded_serves + self.fallbacks

    @property
    def availability(self) -> float:
        """Fraction of requests answered with knowledge (fresh or degraded)."""
        if self.requests == 0:
            return 1.0
        return (self.served_fresh + self.degraded_serves) / self.requests

    @property
    def fallback_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.fallbacks / self.requests

    def percentile(self, q: float) -> float:
        return self.latency.percentile(q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)


def _counter_property(attr: str, as_int: bool) -> property:
    """Expose a registry counter as a plain attribute supporting ``+=``."""

    def fget(self: ServingMetrics):
        value = self._counters[attr].value
        return int(value) if as_int else value

    def fset(self: ServingMetrics, value) -> None:
        delta = value - self._counters[attr].value
        if delta < 0:
            raise ValueError(f"{attr} is a counter; it cannot decrease")
        self._counters[attr].inc(delta)

    return property(fget, fset)


for _attr in _COUNTER_SPECS:
    setattr(ServingMetrics, _attr, _counter_property(_attr, as_int=True))
setattr(ServingMetrics, "backoff_wait_s", _counter_property("backoff_wait_s", as_int=False))


@dataclass
class DeadLetter:
    """One query whose batch processing exhausted its retry budget."""

    query: str
    day: int
    attempts: int
    reason: str


class CosmoService:
    """Online serving wrapper around any batched knowledge generator.

    ``generator`` must expose ``generate_batch(prompts) ->
    GenerationBatch`` and a ``latency`` :class:`LatencyModel` — both
    :class:`~repro.core.cosmo_lm.CosmoLM` and the raw teacher qualify,
    so the serving bench can compare the two deployments.

    ``batch_costs`` opts the :meth:`serve_batch` fast path into
    amortized window accounting (see :class:`BatchCostModel`); left
    ``None``, batched serving charges exactly what per-item serving
    would.

    With ``resilience=True`` (the default) generator calls go through a
    :class:`~repro.serving.resilience.ResilientGenerator` (``retry`` /
    ``breaker`` / ``response_validator`` configure it) and cache misses
    degrade gracefully instead of silently returning the fallback.

    Observability: pass a shared ``registry`` to aggregate several
    services into one metrics surface (children are labeled by ``name``,
    so two services never collide), and/or a ``tracer`` to collect
    batch/refresh spans; by default each service gets a private registry
    and a tracer timed on its own :class:`SimClock`.
    """

    def __init__(
        self,
        generator,
        clock: SimClock | None = None,
        prompt_builder=None,
        fallback_response: str = "",
        daily_capacity: int = 10_000,
        resilience: bool = True,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        response_validator=None,
        seed: int = 0,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        event_log: EventLog | None = None,
        name: str = "cosmo",
        batch_costs: BatchCostModel | None = None,
    ):
        self.generator = generator
        self.clock = clock or SimClock()
        self._batch_costs = batch_costs
        self._batch_seq = 0
        self.name = name
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer or Tracer(clock=self.clock.now)
        self.event_log = event_log
        self._in_degraded_mode = False
        self.cache = AsyncCacheStore(
            self.clock, daily_capacity=daily_capacity,
            registry=self.registry, name=name,
        )
        self.cache.attach_tracer(self.tracer)
        self.features = FeatureStore(self.clock, registry=self.registry, name=name)
        self.metrics = ServingMetrics(registry=self.registry, service=name)
        self.dead_letters: list[DeadLetter] = []
        self._snapshot_version: str | None = None
        self._prompt_builder = prompt_builder or (lambda query: query)
        self._fallback = fallback_response
        self._feedback: list[tuple[str, str, bool]] = []
        self._last_good: dict[str, str] = {}
        if resilience:
            self._resilient = ResilientGenerator(
                generator,
                self.clock,
                retry=retry,
                breaker=breaker or CircuitBreaker(self.clock),
                validator=response_validator,
                seed=seed,
                tracer=self.tracer,
            )
            self._resilient.breaker.attach_registry(self.registry, name=name)
            if event_log is not None:
                self._resilient.breaker.attach_event_log(event_log, component=name)
        else:
            self._resilient = None

    @property
    def breaker(self) -> CircuitBreaker | None:
        """The circuit breaker, when resilience is enabled."""
        return self._resilient.breaker if self._resilient is not None else None

    @property
    def snapshot_version(self) -> str | None:
        """The knowledge snapshot version this replica authoritatively
        serves (None until the first :meth:`swap_snapshot`)."""
        return self._snapshot_version

    def swap_snapshot(self, snapshot) -> int:
        """Atomically swap this replica onto a knowledge snapshot.

        ``snapshot`` is a :class:`~repro.refresh.snapshot.KgSnapshot`
        (duck-typed here so the serving layer stays import-independent
        of the refresh package).  One step does all three moves: the
        yearly cache layer is replaced by the snapshot's serving table
        (cache warm), daily entries tagged with other versions are
        invalidated, and a version-aware generator (one exposing
        ``set_snapshot``) is pointed at the new content.  Returns the
        number of cache entries invalidated.
        """
        version = snapshot.manifest.version
        invalidated = self.cache.install_snapshot(version, snapshot.entries)
        set_snapshot = getattr(self.generator, "set_snapshot", None)
        if set_snapshot is not None:
            set_snapshot(snapshot)
        previous, self._snapshot_version = self._snapshot_version, version
        if self.event_log is not None:
            self.event_log.emit(
                "service.snapshot_swap", ts=self.clock.now(),
                component=self.name, version=version,
                previous=previous or "", invalidated=invalidated,
            )
        return invalidated

    @property
    def resilient(self) -> bool:
        return self._resilient is not None

    # ------------------------------------------------------------------
    def _observe_latency(self, latency_s: float) -> None:
        """Latency observation with the active trace id as its exemplar."""
        context = self.tracer.active_context
        self.metrics.observe_latency(
            latency_s, trace_id=None if context is None else context.trace_id)

    def _charge_request(self, latency_s: float) -> None:
        self._observe_latency(latency_s)
        self.clock.advance(latency_s)

    def _maybe_span(self, name: str, **attributes):
        """A span context while a trace context is attached, else a no-op.

        The stage spans of the serve path (cache serve, degraded serve,
        generation) only exist for traced requests; untraced callers pay
        nothing.
        """
        if self.tracer.active_context is not None:
            return self.tracer.span(name, **attributes)
        return nullcontext(None)

    def serve(self, request: ServeRequest, allow_enqueue: bool = True,
              trace: TraceContext | None = None) -> ServeResult:
        """Serve one structured request; the canonical entrypoint.

        Cached mode walks the degradation chain: fresh cache entry →
        (possibly stale) feature-store entry → last known good response
        → fallback.  The miss is enqueued for batch processing (unless
        ``allow_enqueue`` is False — cluster admission control shedding
        load keeps the degraded answer but skips the queue), so degraded
        answers heal on the next batch cycle.  Direct mode bypasses the
        cache and calls the model synchronously.

        When the request carries a :class:`~repro.obs.tracing.TraceContext`
        the whole serve runs under an attached ``serving.request`` span —
        cache fetch, degradation steps and generator attempts become
        child spans and the result echoes the trace id.

        ``trace`` overrides ``request.trace`` when given: the cluster
        passes its per-hop child context out-of-band so propagation does
        not have to copy the (frozen) request once per request.
        """
        if trace is None:
            trace = request.trace
        if trace is None:
            result = self._serve(request, allow_enqueue)
        else:
            with self.tracer.attach(trace):
                with self.tracer.span(
                    "serving.request", service=self.name,
                    mode="direct" if request.direct else "cached",
                ) as span:
                    result = self._serve(request, allow_enqueue)
                    attrs = span.attributes
                    attrs["outcome"] = result.outcome.value
                    attrs["source"] = result.source
            # The result is freshly built by _serve and unshared, so stamp
            # the frozen dataclass in place — dataclasses.replace's field
            # introspection is measurable at per-request rates.
            object.__setattr__(result, "trace_id", trace.trace_id)
        self._note_outcome(result)
        return result

    def serve_batch(self, requests: list[ServeRequest],
                    batch_id: str | None = None,
                    allow_enqueue: bool = True) -> list[ServeResult]:
        """Serve one window of requests as a unit; the batch entrypoint.

        Every result is stamped with the window's ``batch_id`` and the
        request's ``batch_index`` inside it, so traces and exemplars can
        attribute per-item latency within a flush.  Without a
        :class:`BatchCostModel` the window performs the exact per-item
        operations :meth:`serve` would (byte-identical envelopes modulo
        the batch fields, byte-identical metrics) — with one, the cached
        window is served through one vectorized cache fetch and charged
        the amortized window cost, all items completing together.
        Direct-mode requests always take the per-item path: a
        synchronous model call has no window to amortize over.
        """
        self._batch_seq += 1
        if batch_id is None:
            batch_id = f"{self.name}-b{self._batch_seq}"
        with self._maybe_span("serving.serve_batch", batch=batch_id,
                              items=len(requests)):
            if self._batch_costs is None or any(r.direct for r in requests):
                results = [self.serve(request, allow_enqueue=allow_enqueue)
                           for request in requests]
            else:
                results = self._serve_batch_amortized(requests, allow_enqueue)
        for index, result in enumerate(results):
            # Results are freshly built and unshared; stamp the frozen
            # dataclasses in place (see the trace_id note in serve()).
            object.__setattr__(result, "batch_id", batch_id)
            object.__setattr__(result, "batch_index", index)
        return results

    def _serve_batch_amortized(self, requests: list[ServeRequest],
                               allow_enqueue: bool) -> list[ServeResult]:
        """One vectorized cache fetch + one window charge for the batch."""
        queries = [request.query for request in requests]
        hits = self.cache.fetch_many(queries, enqueue=allow_enqueue)
        duration = self._batch_costs.window_latency_s(len(requests))
        self.clock.advance(duration)
        results: list[ServeResult] = []
        for request, hit in zip(requests, hits):
            if hit is not None:
                text, layer = hit
                self.metrics.served_fresh += 1
                source = (SOURCE_CACHE_YEARLY if layer == "yearly"
                          else SOURCE_CACHE_DAILY)
                result = ServeResult(query=request.query, text=text,
                                     outcome=ServeOutcome.FRESH, source=source,
                                     latency_s=duration, replica=self.name)
            else:
                result = self._degraded_window_result(request.query, duration)
            self._observe_latency(duration)
            self._note_outcome(result)
            results.append(result)
        return results

    def _degraded_window_result(self, query: str,
                                duration: float) -> ServeResult:
        """Degradation chain for a miss inside an amortized window (the
        stale read shares the window's charge instead of adding its own
        per-item latency)."""
        if self._resilient is not None:
            stale, source = self._stale_response(query)
            if stale is not None:
                self.metrics.degraded_serves += 1
                return ServeResult(query=query, text=stale,
                                   outcome=ServeOutcome.DEGRADED, source=source,
                                   latency_s=duration, replica=self.name)
        self.metrics.fallbacks += 1
        return ServeResult(query=query, text=self._fallback,
                           outcome=ServeOutcome.FALLBACK, source=SOURCE_FALLBACK,
                           latency_s=duration, replica=self.name)

    def _serve(self, request: ServeRequest, allow_enqueue: bool) -> ServeResult:
        if request.direct:
            return self._serve_direct(request.query)
        return self._serve_cached(request.query, allow_enqueue)

    def _note_outcome(self, result: ServeResult) -> None:
        """Publish degraded-mode *transitions* into the event log.

        Emitting per-request outcomes would flood the bounded log, so
        only the edges are events: the first non-fresh answer after
        fresh service enters degraded mode, the first fresh answer after
        that exits it.
        """
        degraded = result.outcome is not ServeOutcome.FRESH
        if self.event_log is not None:
            if degraded and not self._in_degraded_mode:
                self.event_log.emit(
                    "service.degraded_entry", ts=self.clock.now(),
                    component=self.name, outcome=result.outcome.value,
                    source=result.source,
                )
            elif not degraded and self._in_degraded_mode:
                self.event_log.emit(
                    "service.degraded_exit", ts=self.clock.now(),
                    component=self.name, source=result.source,
                )
        self._in_degraded_mode = degraded

    def _serve_cached(self, query: str, allow_enqueue: bool) -> ServeResult:
        """Cache path: fresh hit, else the degradation chain."""
        hit = self.cache.fetch(query, enqueue=allow_enqueue)
        if hit is not None:
            text, layer = hit
            with self._maybe_span("serving.cache_serve", layer=layer):
                self._charge_request(_CACHE_LATENCY_S)
            self.metrics.served_fresh += 1
            source = SOURCE_CACHE_YEARLY if layer == "yearly" else SOURCE_CACHE_DAILY
            return ServeResult(query=query, text=text, outcome=ServeOutcome.FRESH,
                               source=source, latency_s=_CACHE_LATENCY_S,
                               replica=self.name)
        if self._resilient is not None:
            stale, source = self._stale_response(query)
            if stale is not None:
                with self._maybe_span("serving.degraded_serve", source=source):
                    self._charge_request(_DEGRADED_LATENCY_S)
                self.metrics.degraded_serves += 1
                return ServeResult(query=query, text=stale,
                                   outcome=ServeOutcome.DEGRADED, source=source,
                                   latency_s=_DEGRADED_LATENCY_S, replica=self.name)
        with self._maybe_span("serving.fallback_serve"):
            self._charge_request(_CACHE_LATENCY_S)
        self.metrics.fallbacks += 1
        return ServeResult(query=query, text=self._fallback,
                           outcome=ServeOutcome.FALLBACK, source=SOURCE_FALLBACK,
                           latency_s=_CACHE_LATENCY_S, replica=self.name)

    def _stale_response(self, query: str) -> tuple[str | None, str]:
        """Best stale answer for ``query`` and the source that holds it."""
        record = self.features.get(query)
        if record is not None:
            return record.knowledge_text, SOURCE_FEATURE_STORE
        last = self._last_good.get(query)
        if last is not None:
            return last, SOURCE_LAST_GOOD
        return None, SOURCE_FALLBACK

    def _serve_direct(self, query: str) -> ServeResult:
        """Bypass the cache and call the model synchronously.

        The comparison point for the serving bench: this is what serving
        the teacher LLM per-request would cost.  Under resilience the
        call is retried/breaker-guarded and failures fall through the
        same degradation chain as cache misses.
        """
        prompt = self._prompt_builder(query)
        clock_before = self.clock.now()
        latency_before = self.generator.latency.total_simulated_s
        generation = None
        # Under a ResilientGenerator the per-attempt spans
        # (resilience.attempt / resilience.backoff) already cover the
        # generator call, so a serving.generate wrapper would only
        # duplicate the generation stage on the hot path; it is emitted
        # for the raw-generator configuration that has no spans of its own.
        if self._resilient is not None:
            generation = self._resilient.generate_batch([prompt]).generations[0]
        else:
            with self._maybe_span("serving.generate") as span:
                try:
                    generation = self.generator.generate_batch([prompt]).generations[0]
                except GeneratorFault:
                    if span is not None:
                        span.set_attribute("outcome", "failed")
        if generation is None:
            return self._degrade_direct(query, clock_before, latency_before)
        if self._resilient is not None:
            latency = self.clock.now() - clock_before
            self._observe_latency(latency)
        else:
            latency = self.generator.latency.total_simulated_s - latency_before
            self._observe_latency(latency)
            self.clock.advance(latency)
        self.metrics.served_fresh += 1
        self._last_good[query] = generation.text
        # Write through so later cached requests hit immediately.
        self.features.put(query, generation.text)
        self.cache.apply_batch({query: generation.text})
        return ServeResult(query=query, text=generation.text,
                           outcome=ServeOutcome.FRESH, source=SOURCE_DIRECT,
                           latency_s=latency, replica=self.name)

    def _degrade_direct(self, query: str, clock_before: float,
                        latency_before: float) -> ServeResult:
        """Degradation chain for a failed direct call."""
        self.metrics.generator_failures += 1
        if self._resilient is None:
            self.clock.advance(self.generator.latency.total_simulated_s - latency_before)
        stale, source = self._stale_response(query)
        if stale is not None and self._resilient is not None:
            with self._maybe_span("serving.degraded_serve", source=source):
                self.clock.advance(_DEGRADED_LATENCY_S)
            latency = self.clock.now() - clock_before
            self._observe_latency(latency)
            self.metrics.degraded_serves += 1
            return ServeResult(query=query, text=stale,
                               outcome=ServeOutcome.DEGRADED, source=source,
                               latency_s=latency, replica=self.name)
        with self._maybe_span("serving.fallback_serve"):
            self.clock.advance(_CACHE_LATENCY_S)
        latency = self.clock.now() - clock_before
        self._observe_latency(latency)
        self.metrics.fallbacks += 1
        return ServeResult(query=query, text=self._fallback,
                           outcome=ServeOutcome.FALLBACK, source=SOURCE_FALLBACK,
                           latency_s=latency, replica=self.name)

    # ------------------------------------------------------------------
    def run_batch(self, max_queries: int | None = None) -> int:
        """Process pending queries in bulk and install responses.

        With resilience enabled, failed prompts are retried per the
        policy; prompts that exhaust the budget move to the dead-letter
        queue (re-driven by :meth:`daily_refresh`).  When the circuit
        breaker refuses the batch, queries simply stay pending for the
        next cycle.
        """
        pending = self.cache.pending_queries()
        if max_queries is not None:
            pending = pending[:max_queries]
        if not pending:
            return 0
        with self.tracer.span("serving.run_batch", service=self.name,
                              pending=len(pending)) as span:
            installed = self._run_batch(pending)
            span.set_attribute("installed", installed)
        return installed

    def _run_batch(self, pending: list[str]) -> int:
        self.metrics.batch_runs += 1
        prompts = [self._prompt_builder(query) for query in pending]
        responses: dict[str, str] = {}
        if self._resilient is not None:
            outcome = self._resilient.generate_batch(prompts)
            self.metrics.retries += outcome.retries
            self.metrics.generator_failures += outcome.errors
            self.metrics.rejected_generations += outcome.rejected
            self.metrics.backoff_wait_s += outcome.wait_s
            if outcome.breaker_refused:
                self.metrics.breaker_refusals += 1
            for query, generation in zip(pending, outcome.generations):
                if generation is None:
                    continue
                responses[query] = generation.text
            failed = [pending[i] for i in outcome.failed_indices]
            if failed and outcome.attempts > 0 and not outcome.breaker_refused:
                for query in failed:
                    self._dead_letter(query, outcome.attempts, "retries exhausted")
                self.cache.drop_pending(failed)
                if self.event_log is not None:
                    self.event_log.emit(
                        "service.dead_letter", ts=self.clock.now(),
                        component=self.name, count=len(failed),
                        attempts=outcome.attempts,
                    )
        else:
            try:
                generations = self.generator.generate_batch(prompts).generations
            except GeneratorFault:
                self.metrics.generator_failures += 1
                return 0
            responses = {q: g.text for q, g in zip(pending, generations)}
        for query, text in responses.items():
            self.features.put(query, text)
            self._last_good[query] = text
        installed = self.cache.apply_batch(responses)
        self.metrics.batch_queries_processed += len(responses)
        return installed

    def _dead_letter(self, query: str, attempts: int, reason: str) -> None:
        self.dead_letters.append(
            DeadLetter(query=query, day=self.clock.day, attempts=attempts, reason=reason)
        )
        self.metrics.dead_lettered += 1

    def redrive_dead_letters(self) -> int:
        """Retry the dead-letter queue immediately.

        :meth:`daily_refresh` re-drives at end of day as usual; the
        rollout controller calls this directly after a rollback so
        queries dead-lettered against a bad snapshot heal on the
        restored one instead of waiting for the day boundary.
        """
        return self._redrive_dead_letters()

    def _redrive_dead_letters(self) -> int:
        """Retry every dead-lettered query once more; successes install,
        failures go back on the queue with their attempt count bumped."""
        if not self.dead_letters:
            return 0
        letters, self.dead_letters = self.dead_letters, []
        prompts = [self._prompt_builder(letter.query) for letter in letters]
        if self._resilient is not None:
            outcome = self._resilient.generate_batch(prompts)
            self.metrics.retries += outcome.retries
            self.metrics.generator_failures += outcome.errors
            self.metrics.rejected_generations += outcome.rejected
            self.metrics.backoff_wait_s += outcome.wait_s
            generations = outcome.generations
        else:
            try:
                generations = self.generator.generate_batch(prompts).generations
            except GeneratorFault:
                self.metrics.generator_failures += 1
                self.dead_letters = letters
                return 0
        redriven = 0
        responses: dict[str, str] = {}
        for letter, generation in zip(letters, generations):
            if generation is None:
                self.dead_letters.append(
                    DeadLetter(letter.query, self.clock.day,
                               letter.attempts + 1, letter.reason)
                )
                continue
            responses[letter.query] = generation.text
            self.features.put(letter.query, generation.text)
            self._last_good[letter.query] = generation.text
            redriven += 1
        self.cache.apply_batch(responses)
        self.metrics.redriven += redriven
        if self.event_log is not None:
            self.event_log.emit(
                "service.redrive", ts=self.clock.now(), component=self.name,
                redriven=redriven, requeued=len(self.dead_letters),
            )
        return redriven

    # ------------------------------------------------------------------
    # Feedback loop (§3.5.2): user interactions flow back into the model.
    # ------------------------------------------------------------------
    def record_feedback(self, query: str, knowledge: str, helpful: bool) -> None:
        """Log one user interaction with served knowledge."""
        self._feedback.append((query, knowledge, helpful))

    @property
    def pending_feedback(self) -> int:
        return len(self._feedback)

    def apply_feedback(self, epochs: int = 1) -> int:
        """Continually finetune the model's typicality judge on logged
        interactions; returns the number of examples consumed.

        Requires the generator to expose a trainable ``classifier`` (the
        :class:`~repro.core.cosmo_lm.CosmoLM` interface); other
        generators simply ignore feedback.
        """
        if not self._feedback:
            return 0
        classifier = getattr(self.generator, "classifier", None)
        if classifier is None or not hasattr(classifier, "fit"):
            self._feedback.clear()
            return 0
        pairs = []
        for query, knowledge, helpful in self._feedback:
            prompt = (f"{self._prompt_builder(query).rsplit(' task: ', 1)[0]} "
                      f"knowledge: {knowledge.rstrip('.')} task: typicality")
            pairs.append((prompt, "yes" if helpful else "no"))
        classifier.fit(pairs, epochs=epochs)
        consumed = len(self._feedback)
        self._feedback.clear()
        return consumed

    def daily_refresh(self, refresh_stale: bool = True) -> dict[str, int]:
        """End-of-day maintenance: promote hot entries, re-drive the
        dead-letter queue, refresh stale features, advance the clock to
        the next day."""
        with self.tracer.span("serving.daily_refresh", service=self.name,
                              day=self.clock.day) as span:
            report = self._daily_refresh(refresh_stale)
            for key, value in report.items():
                span.set_attribute(key, value)
        return report

    def _daily_refresh(self, refresh_stale: bool) -> dict[str, int]:
        promoted = self.cache.promote_frequent()
        self.apply_feedback()
        redriven = self._redrive_dead_letters()
        refreshed = 0
        if refresh_stale:
            stale = self.features.stale_keys(max_age_days=1)
            if stale:
                prompts = [self._prompt_builder(key) for key in stale]
                if self._resilient is not None:
                    outcome = self._resilient.generate_batch(prompts)
                    self.metrics.retries += outcome.retries
                    self.metrics.generator_failures += outcome.errors
                    self.metrics.rejected_generations += outcome.rejected
                    self.metrics.backoff_wait_s += outcome.wait_s
                    generations = outcome.generations
                else:
                    try:
                        generations = self.generator.generate_batch(prompts).generations
                    except GeneratorFault:
                        self.metrics.generator_failures += 1
                        generations = [None] * len(stale)
                for key, generation in zip(stale, generations):
                    if generation is None:
                        continue  # keep the stale entry; better than nothing
                    self.features.put(key, generation.text)
                    self._last_good[key] = generation.text
                    refreshed += 1
        # The refresh runs at end of day: sleep to the next day boundary
        # so every simulated day starts at exactly day * SECONDS_PER_DAY
        # regardless of how much request latency accumulated during it.
        self.clock.sleep_until(self.clock.next_day_start())
        return {"promoted": promoted, "refreshed": refreshed, "redriven": redriven}
