"""The deployed COSMO service: operational flow of §3.5.2 / Figure 5.

Ties together the model (COSMO-LM), the two-layer asynchronous cache
store and the feature store, with simulated latency accounting:

* **request handling** — queries first hit the cache; hits return at
  cache latency, misses are enqueued and return a fallback;
* **batch processing** — pending queries are answered by the model in
  bulk and written through the feature store into the daily cache layer;
* **daily refresh** — session logs feed back into the model (the
  feedback loop) and stale features are recomputed;
* **latency accounting** — every request is charged simulated seconds so
  p50/p99 and the cached-vs-direct-LLM comparison are measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving.cache import AsyncCacheStore
from repro.serving.clock import SimClock
from repro.serving.feature_store import FeatureStore

__all__ = ["ServingMetrics", "CosmoService"]

_CACHE_LATENCY_S = 0.002


@dataclass
class ServingMetrics:
    """Latency and throughput accounting for the service."""

    request_latencies_s: list[float] = field(default_factory=list)
    batch_runs: int = 0
    batch_queries_processed: int = 0
    fallbacks: int = 0

    def percentile(self, q: float) -> float:
        if not self.request_latencies_s:
            return 0.0
        return float(np.percentile(self.request_latencies_s, q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)


class CosmoService:
    """Online serving wrapper around any batched knowledge generator.

    ``generator`` must expose ``generate_knowledge(prompts) ->
    [Generation]`` and a ``latency`` :class:`LatencyModel` — both
    :class:`~repro.core.cosmo_lm.CosmoLM` and a raw teacher adapter
    qualify, so the serving bench can compare the two deployments.
    """

    def __init__(
        self,
        generator,
        clock: SimClock | None = None,
        prompt_builder=None,
        fallback_response: str = "",
        daily_capacity: int = 10_000,
    ):
        self.generator = generator
        self.clock = clock or SimClock()
        self.cache = AsyncCacheStore(self.clock, daily_capacity=daily_capacity)
        self.features = FeatureStore(self.clock)
        self.metrics = ServingMetrics()
        self._prompt_builder = prompt_builder or (lambda query: query)
        self._fallback = fallback_response
        self._feedback: list[tuple[str, str, bool]] = []

    # ------------------------------------------------------------------
    def handle_request(self, query: str) -> str:
        """Serve one query from cache; misses get the fallback response."""
        response = self.cache.lookup(query)
        self.metrics.request_latencies_s.append(_CACHE_LATENCY_S)
        self.clock.advance(_CACHE_LATENCY_S)
        if response is None:
            self.metrics.fallbacks += 1
            return self._fallback
        return response

    def handle_request_direct(self, query: str) -> str:
        """Bypass the cache and call the model synchronously.

        The comparison point for the serving bench: this is what serving
        the teacher LLM per-request would cost.
        """
        before = self.generator.latency.total_simulated_s
        generation = self.generator.generate_knowledge([self._prompt_builder(query)])[0]
        latency = self.generator.latency.total_simulated_s - before
        self.metrics.request_latencies_s.append(latency)
        self.clock.advance(latency)
        return generation.text

    # ------------------------------------------------------------------
    def run_batch(self, max_queries: int | None = None) -> int:
        """Process pending queries in bulk and install responses."""
        pending = self.cache.pending_queries()
        if max_queries is not None:
            pending = pending[:max_queries]
        if not pending:
            return 0
        prompts = [self._prompt_builder(query) for query in pending]
        generations = self.generator.generate_knowledge(prompts)
        responses: dict[str, str] = {}
        for query, generation in zip(pending, generations):
            responses[query] = generation.text
            self.features.put(query, generation.text)
        installed = self.cache.apply_batch(responses)
        self.metrics.batch_runs += 1
        self.metrics.batch_queries_processed += len(pending)
        return installed

    # ------------------------------------------------------------------
    # Feedback loop (§3.5.2): user interactions flow back into the model.
    # ------------------------------------------------------------------
    def record_feedback(self, query: str, knowledge: str, helpful: bool) -> None:
        """Log one user interaction with served knowledge."""
        self._feedback.append((query, knowledge, helpful))

    @property
    def pending_feedback(self) -> int:
        return len(self._feedback)

    def apply_feedback(self, epochs: int = 1) -> int:
        """Continually finetune the model's typicality judge on logged
        interactions; returns the number of examples consumed.

        Requires the generator to expose a trainable ``classifier`` (the
        :class:`~repro.core.cosmo_lm.CosmoLM` interface); other
        generators simply ignore feedback.
        """
        if not self._feedback:
            return 0
        classifier = getattr(self.generator, "classifier", None)
        if classifier is None or not hasattr(classifier, "fit"):
            self._feedback.clear()
            return 0
        pairs = []
        for query, knowledge, helpful in self._feedback:
            prompt = (f"{self._prompt_builder(query).rsplit(' task: ', 1)[0]} "
                      f"knowledge: {knowledge.rstrip('.')} task: typicality")
            pairs.append((prompt, "yes" if helpful else "no"))
        classifier.fit(pairs, epochs=epochs)
        consumed = len(self._feedback)
        self._feedback.clear()
        return consumed

    def daily_refresh(self, refresh_stale: bool = True) -> dict[str, int]:
        """End-of-day maintenance: promote hot entries, refresh stale
        features, advance the clock to the next day."""
        promoted = self.cache.promote_frequent()
        self.apply_feedback()
        refreshed = 0
        if refresh_stale:
            stale = self.features.stale_keys(max_age_days=1)
            if stale:
                prompts = [self._prompt_builder(key) for key in stale]
                for key, generation in zip(stale, self.generator.generate_knowledge(prompts)):
                    self.features.put(key, generation.text)
                    refreshed += 1
        self.clock.advance_days(1)
        return {"promoted": promoted, "refreshed": refreshed}
