"""Chaos simulation harness for the serving stack.

Drives Zipf traffic against a :class:`CosmoService` whose generator is
wrapped in a :class:`FlakyGenerator`, and measures *truthful*
availability: a request counts as available only when the served text is
the exact knowledge the scripted generator would produce — garbage,
truncations and empty fallbacks all count as unavailable.  Used by
``benchmarks/bench_ablation_resilience.py`` and the ``repro chaos`` CLI
command.

Everything runs on the :class:`SimClock`: days of simulated traffic,
backoff waits and breaker cooldowns complete in milliseconds of wall
time and replay bit-identically for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.llm.interface import Generation, GenerationBatch, LatencyModel
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_S, Histogram
from repro.serving.api import ServeRequest
from repro.serving.clock import SimClock
from repro.serving.deployment import CosmoService
from repro.serving.faults import FaultInjector, FaultPlan, FlakyGenerator
from repro.serving.resilience import CircuitBreaker
from repro.utils.rng import spawn_rng

__all__ = ["ScriptedGenerator", "ChaosConfig", "ChaosReport", "run_chaos", "run_outage_demo"]


class ScriptedGenerator:
    """Deterministic stand-in for COSMO-LM with honest latency accounting.

    Its output for a prompt is a pure function of the prompt, so the
    chaos harness can check served responses against ground truth.
    """

    parameter_count = 7_000_000

    def __init__(self):
        self.latency = LatencyModel()

    @staticmethod
    def knowledge_for(prompt: str) -> str:
        return f"it is used for {prompt}."

    def generate_batch(self, prompts: list[str]) -> GenerationBatch:
        outputs: list[Generation | None] = []
        for prompt in prompts:
            latency = self.latency.charge(self.parameter_count, 10)
            outputs.append(
                Generation(text=self.knowledge_for(prompt), tokens=10, latency_s=latency)
            )
        return GenerationBatch(generations=outputs)

    def generate_knowledge(self, prompts: list[str]) -> list[Generation]:
        """Deprecated shim over :meth:`generate_batch`."""
        return self.generate_batch(prompts).require()


def _response_ok(text: str) -> bool:
    """Strict output validation for scripted generations."""
    return bool(text.strip()) and text.rstrip().endswith(".")


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos scenario: traffic shape, fault mix, resilience arm."""

    fault_rate: float = 0.1
    resilience: bool = True
    seed: int = 7
    n_queries: int = 200
    zipf_a: float = 1.3
    requests_per_day: int = 1500
    days: int = 2
    warmup_days: int = 1
    chunk: int = 100
    chunk_gap_s: float = 300.0
    timeout_s: float = 5.0
    #: Sweep the whole query universe once at the start of warmup — the
    #: paper's "pre-load the year's frequent searches" in miniature.
    prefetch_universe: bool = True


@dataclass
class ChaosReport:
    """Measured-window results of one chaos run."""

    config: ChaosConfig
    requests: int = 0
    valid: int = 0
    served_fresh: int = 0
    degraded: int = 0
    fallbacks: int = 0
    retries: int = 0
    generator_failures: int = 0
    rejected_generations: int = 0
    dead_lettered: int = 0
    redriven: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    pending_evictions: int = 0
    #: Streaming latency distribution of the measured window — bounded
    #: memory no matter how many simulated days the scenario covers.
    latency: Histogram = field(
        default_factory=lambda: Histogram(DEFAULT_LATENCY_BUCKETS_S)
    )

    @property
    def availability(self) -> float:
        """Fraction of measured requests answered with correct knowledge."""
        return self.valid / self.requests if self.requests else 1.0

    @property
    def served_availability(self) -> float:
        """Service-level view: fresh + degraded serves over requests."""
        total = self.served_fresh + self.degraded + self.fallbacks
        return (self.served_fresh + self.degraded) / total if total else 1.0

    def percentile_ms(self, q: float) -> float:
        return self.latency.percentile(q) * 1000.0


def _traffic(config: ChaosConfig, day: int) -> list[str]:
    """One day of Zipf-weighted traffic over the query universe."""
    rng = spawn_rng(config.seed, f"chaos-traffic-day{day}")
    weights = 1.0 / np.arange(1, config.n_queries + 1) ** config.zipf_a
    weights /= weights.sum()
    picks = rng.choice(config.n_queries, size=config.requests_per_day, p=weights)
    return [f"query {int(i):03d}" for i in picks]


def run_chaos(config: ChaosConfig) -> ChaosReport:
    """Run one chaos scenario and report measured-window metrics."""
    clock = SimClock()
    scripted = ScriptedGenerator()
    injector = FaultInjector(
        FaultPlan.mixed(config.fault_rate, timeout_s=config.timeout_s),
        seed=config.seed,
    )
    flaky = FlakyGenerator(scripted, injector)
    service = CosmoService(
        flaky,
        clock=clock,
        resilience=config.resilience,
        response_validator=_response_ok,
        seed=config.seed,
    )

    report = ChaosReport(config=config)
    for day in range(config.warmup_days + config.days):
        measuring = day >= config.warmup_days
        traffic = _traffic(config, day)
        if day == 0 and config.warmup_days > 0 and config.prefetch_universe:
            traffic = [
                f"query {i:03d}" for i in range(config.n_queries)
            ] + traffic
        for start in range(0, len(traffic), config.chunk):
            for query in traffic[start : start + config.chunk]:
                result = service.serve(ServeRequest(query=query))
                if measuring:
                    report.requests += 1
                    if result.text == ScriptedGenerator.knowledge_for(query):
                        report.valid += 1
                    report.latency.observe(result.latency_s)
            service.run_batch()
            clock.advance(config.chunk_gap_s)
        if day == config.warmup_days - 1:
            # Snapshot cumulative counters so the measured window can be
            # reported as a diff.
            snapshot = _counters(service)
        service.daily_refresh(refresh_stale=True)

    if config.warmup_days == 0:
        snapshot = {key: 0 for key in _counters(service)}
    final = _counters(service)
    for key, value in final.items():
        setattr(report, key, value - snapshot[key])
    return report


def _counters(service: CosmoService) -> dict[str, int]:
    metrics = service.metrics
    breaker = service.breaker
    return {
        "served_fresh": metrics.served_fresh,
        "degraded": metrics.degraded_serves,
        "fallbacks": metrics.fallbacks,
        "retries": metrics.retries,
        "generator_failures": metrics.generator_failures,
        "rejected_generations": metrics.rejected_generations,
        "dead_lettered": metrics.dead_lettered,
        "redriven": metrics.redriven,
        "breaker_opens": breaker.opens if breaker is not None else 0,
        "breaker_closes": breaker.closes if breaker is not None else 0,
        "pending_evictions": service.cache.stats.pending_evictions,
    }


def run_outage_demo(seed: int = 7, chunk: int = 120, chunk_gap_s: float = 300.0):
    """Scripted sustained outage: calm → total outage → recovery.

    Returns ``(service, phases)`` where ``phases`` maps phase name →
    truthful availability during that phase.  Demonstrates the breaker
    opening under sustained faults, failing fast, then recovering
    through half-open probes once the outage clears — all on simulated
    time.
    """
    clock = SimClock()
    scripted = ScriptedGenerator()
    injector = FaultInjector(FaultPlan(), seed=seed)
    flaky = FlakyGenerator(scripted, injector)
    breaker = CircuitBreaker(
        clock, failure_threshold=0.5, window=10, min_calls=4,
        cooldown_s=120.0, half_open_probes=2,
    )
    service = CosmoService(
        flaky, clock=clock, breaker=breaker,
        response_validator=_response_ok, seed=seed,
    )
    rng = spawn_rng(seed, "outage-traffic")
    queries = [f"query {i:02d}" for i in range(40)]

    # Warm the cache and feature store before measuring anything.
    for query in queries:
        service.serve(ServeRequest(query=query))
    service.run_batch()
    clock.advance(chunk_gap_s)

    calm = FaultPlan()
    outage = FaultPlan(error_rate=1.0)
    phases: dict[str, float] = {}
    for name, plan, chunks in (("calm", calm, 3), ("outage", outage, 5),
                               ("recovery", calm, 5)):
        injector.plan = plan
        # Roll the day so the daily layer expires: each phase starts with
        # real demand on the generator, not a fully warm cache.
        clock.advance_days(1)
        served = valid = 0
        for _ in range(chunks):
            for index in rng.integers(0, len(queries), size=chunk):
                query = queries[int(index)]
                result = service.serve(ServeRequest(query=query))
                served += 1
                valid += result.text == ScriptedGenerator.knowledge_for(query)
            service.run_batch()
            clock.advance(chunk_gap_s)
        if name == "recovery":
            service.daily_refresh(refresh_stale=False)
        phases[name] = valid / served
    return service, phases
