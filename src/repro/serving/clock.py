"""Simulated clock for the serving layer.

Deployment behavior (cache TTLs, daily refreshes, latency percentiles) is
driven by simulated time so tests and benches are deterministic and do
not sleep.
"""

from __future__ import annotations

__all__ = ["SimClock", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86_400.0


class SimClock:
    """A manually advanced clock (seconds since simulation start)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def advance_days(self, days: float) -> float:
        return self.advance(days * SECONDS_PER_DAY)

    def sleep_until(self, timestamp: float) -> float:
        """Advance to an absolute simulated time (no-op when already there).

        Raises :class:`ValueError` when ``timestamp`` is in the past —
        a sleep can only end in the future.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot sleep until {timestamp}: already at {self._now}"
            )
        return self.advance(timestamp - self._now)

    def fork(self) -> "SimClock":
        """A new independent clock starting at this clock's current time.

        The sanctioned way to derive a per-component timeline (e.g. one
        clock per cluster replica) — ``cosmolint``'s ``clock-injection``
        rule bans raw ``SimClock(...)`` construction outside factory
        modules so every timeline is traceable to an injected ancestor.
        """
        return SimClock(self._now)

    def next_day_start(self) -> float:
        """Simulated timestamp of the next day boundary."""
        return (self.day + 1) * SECONDS_PER_DAY

    @property
    def day(self) -> int:
        """Whole days elapsed since simulation start."""
        return int(self._now // SECONDS_PER_DAY)
