"""Deterministic consistent-hash routing for the serving cluster.

Sharding traffic across replicas must satisfy three contracts the
cluster (and its property tests) rely on:

* **determinism** — the same ``(replica_ids, vnodes, seed)`` always
  yields the same key→replica mapping.  Points come from BLAKE2b
  digests, never from Python's salted ``hash()``;
* **stability under drain** — removing one replica remaps only the keys
  that replica owned; every other key keeps its assignment (the classic
  consistent-hashing property, via virtual nodes on a shared ring);
* **failover order** — :meth:`ConsistentHashRouter.preference` yields
  the distinct replicas in ring order from the key's point, so "the
  next replica on the ring" is a well-defined failover target when a
  replica's circuit breaker is open.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Sequence

__all__ = ["ConsistentHashRouter"]


def _point(data: str) -> int:
    """64-bit ring position for a string (stable across processes)."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRouter:
    """Key → replica assignment on a virtual-node hash ring.

    Each replica owns ``vnodes`` points on a 64-bit ring; a key routes
    to the first active replica at or after its own point.  ``seed``
    perturbs every point, so two routers with different seeds shard the
    same keys differently (and two with the same seed identically).

    Drained replicas stay on the ring but are skipped during lookup,
    which is what makes draining minimally disruptive: only the drained
    replica's keys move (each to the next replica on the ring), and
    :meth:`restore` returns exactly those keys home.
    """

    def __init__(self, replica_ids: Sequence[str], vnodes: int = 64, seed: int = 0):
        replicas = list(replica_ids)
        if not replicas:
            raise ValueError("router needs at least one replica")
        if len(set(replicas)) != len(replicas):
            raise ValueError(f"duplicate replica ids: {replicas}")
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = vnodes
        self.seed = seed
        self._replicas = replicas
        self._drained: set[str] = set()
        ring: list[tuple[int, str]] = []
        for replica in replicas:
            for vnode in range(vnodes):
                ring.append((_point(f"{seed}|node|{replica}|{vnode}"), replica))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _ in ring]
        self._event_log = None
        self._event_clock = None
        self._event_component = "router"
        self._tracer = None

    # ------------------------------------------------------------------
    def attach_event_log(self, event_log, clock, component: str = "router") -> None:
        """Publish drain/restore transitions into a structured
        :class:`~repro.obs.events.EventLog`.

        The router itself is clockless, so ``clock`` is a zero-argument
        callable returning simulated seconds (the cluster passes its
        arrival clock's ``now``).
        """
        self._event_log = event_log
        self._event_clock = clock
        self._event_component = component

    def attach_tracer(self, tracer) -> None:
        """Collect a ``router.route`` span per *traced* lookup.

        Spans only open while a trace context is attached to ``tracer``
        (the cluster's arrival-clock tracer), so untraced routing — cache
        preloads, benches with tracing off — stays span-free.
        """
        self._tracer = tracer

    def _emit(self, kind: str, replica: str) -> None:
        if self._event_log is not None:
            self._event_log.emit(
                kind, ts=self._event_clock(), component=self._event_component,
                replica=replica, active=len(self.active),
            )

    # ------------------------------------------------------------------
    @property
    def replicas(self) -> list[str]:
        """All replicas, drained or not, in construction order."""
        return list(self._replicas)

    @property
    def active(self) -> list[str]:
        """Replicas currently eligible for routing."""
        return [r for r in self._replicas if r not in self._drained]

    def is_drained(self, replica: str) -> bool:
        self._require(replica)
        return replica in self._drained

    def drain(self, replica: str) -> None:
        """Take a replica out of rotation; its keys move to their next
        ring neighbor, all other assignments are untouched."""
        self._require(replica)
        if replica in self._drained:
            # Double-drain is a no-op, not an error — rollout loops may
            # retry a step — but it is *reported* so operators can see
            # the redundant call in the event stream.
            self._emit("router.drain_noop", replica)
            return
        if len(self._drained) + 1 >= len(self._replicas):
            raise ValueError("cannot drain the last active replica")
        self._drained.add(replica)
        self._emit("router.drain", replica)

    def restore(self, replica: str) -> None:
        """Return a drained replica to rotation (its old keys come back)."""
        self._require(replica)
        if replica not in self._drained:
            # Restoring a never-drained (or already-restored) replica is
            # a warned no-op for the same reason double-drain is.
            self._emit("router.restore_noop", replica)
            return
        self._drained.discard(replica)
        self._emit("router.restore", replica)

    def _require(self, replica: str) -> None:
        if replica not in self._replicas:
            raise KeyError(f"unknown replica {replica!r}")

    # ------------------------------------------------------------------
    def preference(self, key: str, limit: int | None = None) -> list[str]:
        """Distinct active replicas in ring order from ``key``'s point.

        The first entry is the key's owner; later entries are the
        failover order the cluster walks when breakers are open.
        """
        # Routing is spanned only while the ring is degraded (replicas
        # drained): that is when the decision is interesting.  Steady-
        # state routing is a pure hash lookup, and an always-on span here
        # would be the single hottest span in the cluster
        # (bench_trace_overhead pins the traced/bare budget).
        if (self._drained and self._tracer is not None
                and self._tracer.active_context is not None):
            with self._tracer.span("router.route", active=len(self.active),
                                   drained=len(self._drained)) as span:
                order = self._preference(key, limit)
                span.set_attribute("owner", order[0] if order else "")
            return order
        return self._preference(key, limit)

    def _preference(self, key: str, limit: int | None) -> list[str]:
        start = bisect_left(self._points, _point(f"{self.seed}|key|{key}"))
        order: list[str] = []
        seen: set[str] = set()
        size = len(self._ring)
        for step in range(size):
            replica = self._ring[(start + step) % size][1]
            if replica in seen or replica in self._drained:
                continue
            seen.add(replica)
            order.append(replica)
            if limit is not None and len(order) >= limit:
                break
        return order

    def route(self, key: str) -> str:
        """The active replica that owns ``key``."""
        return self.preference(key, limit=1)[0]
