"""Feature store (§3.5.1): model responses → structured features.

Transfers COSMO-LM responses into actionable features for downstream
applications: product key-value pairs, semantic subcategory
representations, and strong-intent flags.  Entries are versioned by
refresh day so the staleness limitation §3.5.3 discusses is observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.relations import RELATION_SPECS, Relation, parse_predicate
from repro.obs.metrics import MetricsRegistry
from repro.serving.clock import SimClock

__all__ = ["FeatureRecord", "FeatureStore"]


@dataclass(frozen=True)
class FeatureRecord:
    """Structured features distilled from one model response."""

    key: str
    knowledge_text: str
    relation: str | None
    tail: str | None
    tail_type: str | None
    strong_intent: bool
    refreshed_day: int
    extras: dict[str, str] = field(default_factory=dict, hash=False)


class FeatureStore:
    """Key → structured-feature mapping with refresh-day versioning."""

    def __init__(self, clock: SimClock, registry: MetricsRegistry | None = None,
                 name: str = "cosmo"):
        self._clock = clock
        self._records: dict[str, FeatureRecord] = {}
        self.registry = registry if registry is not None else MetricsRegistry()
        ops = self.registry.counter(
            "feature_store_ops_total", "feature store operations by kind",
            ("store", "op"),
        )
        self._writes = ops.labels(store=name, op="write")
        self._reads = ops.labels(store=name, op="read")
        self._entries_gauge = self.registry.gauge(
            "feature_store_entries", "live feature records", ("store",),
        ).labels(store=name)
        self._stale_gauge = self.registry.gauge(
            "feature_store_stale_entries",
            "records older than the staleness horizon at last check",
            ("store",),
        ).labels(store=name)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    @staticmethod
    def structure(key: str, knowledge_text: str, refreshed_day: int,
                  extras: dict[str, str] | None = None) -> FeatureRecord:
        """Parse a raw model response into a structured record.

        ``strong_intent`` marks activity/function knowledge — the signals
        navigation treats as explicit customer intents.
        """
        parsed = parse_predicate(knowledge_text)
        relation_name = tail = tail_type = None
        strong = False
        if parsed is not None:
            relation, tail = parsed
            relation_name = relation.value
            tail_type = RELATION_SPECS[relation].tail_type.value
            strong = relation in (
                Relation.USED_FOR_EVE, Relation.X_WANT, Relation.USED_FOR_FUNC,
                Relation.CAPABLE_OF, Relation.USED_TO,
            )
        return FeatureRecord(
            key=key,
            knowledge_text=knowledge_text,
            relation=relation_name,
            tail=tail,
            tail_type=tail_type,
            strong_intent=strong,
            refreshed_day=refreshed_day,
            extras=extras or {},
        )

    @property
    def writes(self) -> int:
        return int(self._writes.value)

    @property
    def reads(self) -> int:
        return int(self._reads.value)

    def put(self, key: str, knowledge_text: str, extras: dict[str, str] | None = None) -> FeatureRecord:
        """Structure and store one model response."""
        record = self.structure(key, knowledge_text, self._clock.day, extras)
        self._records[key] = record
        self._writes.inc()
        self._entries_gauge.set(len(self._records))
        return record

    def get(self, key: str) -> FeatureRecord | None:
        self._reads.inc()
        return self._records.get(key)

    def stale_keys(self, max_age_days: int = 1) -> list[str]:
        """Keys whose features are older than ``max_age_days``.

        Also publishes the count as the ``feature_store_stale_entries``
        gauge, so staleness (§3.5.3) shows up in metrics snapshots.
        """
        today = self._clock.day
        stale = [
            key
            for key, record in self._records.items()
            if today - record.refreshed_day > max_age_days
        ]
        self._stale_gauge.set(len(stale))
        return stale
