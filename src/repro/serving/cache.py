"""Two-layer asynchronous cache store (§3.5.1).

Layer 1 is pre-loaded with the year's frequent searches; layer 2 absorbs
the day's traffic via batch processing: a miss enqueues the query and the
next batch run computes its response and populates the cache.  This is
exactly the paper's trade — most traffic answered at cache latency, cold
queries answered on the *next* request after a batch cycle — and it makes
hit rate, latency and staleness measurable quantities.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.obs.metrics import MetricsRegistry
from repro.serving.clock import SimClock

__all__ = ["CacheStats", "AsyncCacheStore"]

#: attribute name → (store label value for ``outcome``) on the shared
#: ``cache_requests_total`` family; evictions get their own counter.
_OUTCOMES = {
    "layer1_hits": "layer1_hit",
    "layer2_hits": "layer2_hit",
    "misses": "miss",
}


class CacheStats:
    """Hit/miss accounting for one cache store, registry-backed.

    Attribute reads and ``+=`` writes keep the pre-observability API;
    the same counts surface through the registry as
    ``cache_requests_total{store=...,outcome=...}`` and
    ``cache_pending_evictions_total{store=...}``.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 store: str = "cache"):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.store = store
        requests = self.registry.counter(
            "cache_requests_total", "cache lookups by layer outcome",
            ("store", "outcome"),
        )
        self._counters = {
            attr: requests.labels(store=store, outcome=outcome)
            for attr, outcome in _OUTCOMES.items()
        }
        self._counters["pending_evictions"] = self.registry.counter(
            "cache_pending_evictions_total",
            "pending-queue entries evicted (capacity or age)", ("store",),
        ).labels(store=store)
        self._counters["snapshot_invalidations"] = self.registry.counter(
            "cache_snapshot_invalidations_total",
            "entries invalidated by snapshot swaps (version-scoped)", ("store",),
        ).labels(store=store)

    @property
    def requests(self) -> int:
        return self.layer1_hits + self.layer2_hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return (self.layer1_hits + self.layer2_hits) / self.requests


def _stat_property(attr: str) -> property:
    def fget(self: CacheStats) -> int:
        return int(self._counters[attr].value)

    def fset(self: CacheStats, value) -> None:
        delta = value - self._counters[attr].value
        if delta < 0:
            raise ValueError(f"{attr} is a counter; it cannot decrease")
        self._counters[attr].inc(delta)

    return property(fget, fset)


for _attr in (*_OUTCOMES, "pending_evictions", "snapshot_invalidations"):
    setattr(CacheStats, _attr, _stat_property(_attr))


class AsyncCacheStore:
    """Pre-loaded yearly layer + batch-updated daily layer + miss queue."""

    def __init__(
        self,
        clock: SimClock,
        daily_capacity: int = 10_000,
        pending_capacity: int = 50_000,
        pending_max_age_days: int = 3,
        registry: MetricsRegistry | None = None,
        name: str = "cache",
    ):
        self._clock = clock
        self._yearly: dict[str, str] = {}
        self._daily: dict[str, str] = {}
        self._daily_day: int = clock.day
        self._daily_capacity = daily_capacity
        self._pending: dict[str, int] = {}  # query → enqueue day
        #: Snapshot version each daily entry was computed under; entries
        #: tagged with any other version die on the next snapshot swap.
        self._daily_tags: dict[str, str | None] = {}
        self._snapshot_version: str | None = None
        self._pending_capacity = pending_capacity
        self._pending_max_age_days = pending_max_age_days
        self.stats = CacheStats(registry=registry, store=name)
        self._size_gauge = self.stats.registry.gauge(
            "cache_entries", "live cache entries by layer", ("store", "layer"),
        )
        self._name = name
        self._tracer = None
        self.request_log: Counter = Counter()

    def attach_tracer(self, tracer) -> None:
        """Collect a ``cache.fetch`` span per *traced* lookup.

        ``tracer`` is the owning service's tracer; spans are only opened
        while a :class:`~repro.obs.tracing.TraceContext` is attached to
        it, so untraced traffic (preloads, benches with tracing off)
        costs nothing here.
        """
        self._tracer = tracer

    def _publish_sizes(self) -> None:
        self._size_gauge.labels(store=self._name, layer="yearly").set(len(self._yearly))
        self._size_gauge.labels(store=self._name, layer="daily").set(len(self._daily))
        self._size_gauge.labels(store=self._name, layer="pending").set(len(self._pending))

    # ------------------------------------------------------------------
    def preload_yearly(self, entries: dict[str, str]) -> None:
        """Load the year's frequent-search responses (layer 1)."""
        self._yearly.update(entries)
        self._publish_sizes()

    def lookup(self, query: str) -> str | None:
        """Serve a request; a miss enqueues the query for the next batch."""
        hit = self.fetch(query)
        return hit[0] if hit is not None else None

    def fetch(self, query: str, enqueue: bool = True) -> tuple[str, str] | None:
        """Serve a request with layer attribution.

        Returns ``(response, layer)`` where layer is ``"yearly"`` or
        ``"daily"``, or None on a miss.  A miss enqueues the query for
        the next batch unless ``enqueue`` is False (admission control
        shedding load skips the queue so shed traffic cannot crowd out
        admitted misses).
        """
        if self._tracer is not None and self._tracer.active_context is not None:
            with self._tracer.span("cache.fetch", store=self._name) as span:
                hit = self._fetch(query, enqueue)
                span.set_attribute("outcome",
                                   hit[1] if hit is not None else "miss")
            return hit
        return self._fetch(query, enqueue)

    def _fetch(self, query: str, enqueue: bool) -> tuple[str, str] | None:
        self.request_log[query] += 1
        self._roll_daily_layer()
        if query in self._yearly:
            self.stats.layer1_hits += 1
            return self._yearly[query], "yearly"
        if query in self._daily:
            self.stats.layer2_hits += 1
            return self._daily[query], "daily"
        self.stats.misses += 1
        if enqueue and query not in self._pending:
            if len(self._pending) >= self._pending_capacity:
                oldest = min(self._pending, key=self._pending.get)
                del self._pending[oldest]
                self.stats.pending_evictions += 1
            self._pending[query] = self._clock.day
        self._publish_sizes()
        return None

    def fetch_many(self, queries: list[str],
                   enqueue: bool = True) -> list[tuple[str, str] | None]:
        """Vectorized :meth:`fetch` for one serving batch.

        One daily-layer roll, one span and one gauge publish cover the
        whole window instead of one each per query — the cache half of
        the batch-first hot path.  Per-query accounting (request log,
        hit/miss counters, pending enqueue with capacity eviction) is
        identical to ``len(queries)`` sequential fetches.
        """
        if not queries:
            return []
        if self._tracer is not None and self._tracer.active_context is not None:
            with self._tracer.span("cache.fetch_many", store=self._name,
                                   queries=len(queries)) as span:
                hits = self._fetch_many(queries, enqueue)
                span.set_attribute(
                    "hits", sum(1 for hit in hits if hit is not None))
            return hits
        return self._fetch_many(queries, enqueue)

    def _fetch_many(self, queries: list[str],
                    enqueue: bool) -> list[tuple[str, str] | None]:
        self._roll_daily_layer()
        hits: list[tuple[str, str] | None] = []
        for query in queries:
            self.request_log[query] += 1
            if query in self._yearly:
                self.stats.layer1_hits += 1
                hits.append((self._yearly[query], "yearly"))
                continue
            if query in self._daily:
                self.stats.layer2_hits += 1
                hits.append((self._daily[query], "daily"))
                continue
            self.stats.misses += 1
            if enqueue and query not in self._pending:
                if len(self._pending) >= self._pending_capacity:
                    oldest = min(self._pending, key=self._pending.get)
                    del self._pending[oldest]
                    self.stats.pending_evictions += 1
                self._pending[query] = self._clock.day
            hits.append(None)
        self._publish_sizes()
        return hits

    def _roll_daily_layer(self) -> None:
        """Daily layer resets when the simulated day rolls over; pending
        entries nothing ever batch-processed are aged out rather than
        accumulating forever."""
        if self._clock.day != self._daily_day:
            self._daily.clear()
            self._daily_tags.clear()
            self._daily_day = self._clock.day
            self._evict_stale_pending()

    def _evict_stale_pending(self) -> None:
        today = self._clock.day
        stale = [
            query for query, day in self._pending.items()
            if today - day > self._pending_max_age_days
        ]
        for query in stale:
            del self._pending[query]
            self.stats.pending_evictions += 1

    def install_snapshot(self, version: str, entries: Mapping[str, str]) -> int:
        """Atomically swap the cache onto a knowledge snapshot.

        Replaces the yearly layer with the snapshot's serving table (the
        warm step of a blue/green swap) and drops daily entries tagged
        with any *other* snapshot version — stale entries die with their
        version instead of leaking the old knowledge after the swap.
        The pending queue survives: in-flight misses are still real
        demand under the new snapshot.  Returns the number of entries
        invalidated (0 when re-installing the current version — the
        operation is idempotent, which lets rollout retries re-run it).
        """
        self._roll_daily_layer()
        invalidated = 0
        if version != self._snapshot_version:
            invalidated += len(self._yearly)
            stale = [query for query, tag in self._daily_tags.items()
                     if tag != version]
            for query in stale:
                self._daily.pop(query, None)
                del self._daily_tags[query]
            invalidated += len(stale)
        self._yearly = dict(entries)
        self._snapshot_version = version
        self.stats.snapshot_invalidations += invalidated
        self._publish_sizes()
        return invalidated

    @property
    def snapshot_version(self) -> str | None:
        """The snapshot version the yearly layer was installed from."""
        return self._snapshot_version

    # ------------------------------------------------------------------
    def pending_queries(self) -> list[str]:
        """Queries awaiting batch processing, oldest first."""
        return sorted(self._pending, key=lambda q: self._pending[q])

    def apply_batch(self, responses: dict[str, str]) -> int:
        """Install batch-computed responses into the daily layer."""
        self._roll_daily_layer()
        installed = 0
        for query, response in responses.items():
            if len(self._daily) >= self._daily_capacity:
                break
            self._daily[query] = response
            self._daily_tags[query] = self._snapshot_version
            self._pending.pop(query, None)
            installed += 1
        self._publish_sizes()
        return installed

    def drop_pending(self, queries: list[str]) -> int:
        """Remove queries from the pending queue (e.g. dead-lettered)."""
        dropped = 0
        for query in queries:
            if self._pending.pop(query, None) is not None:
                dropped += 1
        self._publish_sizes()
        return dropped

    def promote_frequent(self, min_requests: int = 10) -> int:
        """Move hot daily entries into the yearly layer (traffic adaption)."""
        promoted = 0
        for query, response in list(self._daily.items()):
            if self.request_log[query] >= min_requests and query not in self._yearly:
                self._yearly[query] = response
                promoted += 1
        self._publish_sizes()
        return promoted

    @property
    def yearly_size(self) -> int:
        return len(self._yearly)

    @property
    def daily_size(self) -> int:
        return len(self._daily)

    @property
    def pending_size(self) -> int:
        return len(self._pending)
