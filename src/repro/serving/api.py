"""Structured serving API: the request/response envelope.

The serving stack's original entrypoint was a stringly-typed
``handle_request(query) -> str``, which made it impossible for callers
(and for the cluster router) to distinguish a fresh answer from a
degraded one or a fallback without re-deriving the outcome from metric
deltas.  This module is the typed replacement (the string shims were
deprecated in favor of it and have since been removed):

* :class:`ServeRequest` — one query plus its serving mode (cached or
  direct-to-model);
* :class:`ServeOutcome` — the exhaustive request-accounting enum.  Every
  request resolves to exactly one outcome, which is why
  ``served_fresh + degraded_serves + fallbacks == requests`` holds;
* :class:`ServeResult` — the answer text plus outcome, source (which
  layer of the degradation chain produced the text), simulated latency,
  and the id of the replica that served it.

``CosmoService.serve`` / ``CosmoService.serve_batch`` are the
entrypoints; :class:`~repro.serving.cluster.CosmoCluster` consumes only
the structured surface (``handle`` / ``handle_batch``).

The generation side of the contract is
:class:`~repro.llm.interface.KnowledgeGenerator` (re-exported here):
``generate_batch(prompts) -> GenerationBatch`` is the sole
serving-facing generator entrypoint (``generate_knowledge`` survives
only as a deprecated shim for offline callers).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.llm.interface import KnowledgeGenerator
from repro.obs.tracing import TraceContext

__all__ = [
    "KnowledgeGenerator",
    "ServeOutcome",
    "ServeRequest",
    "ServeResult",
    "SOURCE_CACHE_YEARLY",
    "SOURCE_CACHE_DAILY",
    "SOURCE_FEATURE_STORE",
    "SOURCE_LAST_GOOD",
    "SOURCE_DIRECT",
    "SOURCE_FALLBACK",
]

#: ``ServeResult.source`` values, in degradation-chain order.
SOURCE_CACHE_YEARLY = "cache:yearly"
SOURCE_CACHE_DAILY = "cache:daily"
SOURCE_FEATURE_STORE = "feature_store"
SOURCE_LAST_GOOD = "last_good"
SOURCE_DIRECT = "direct"
SOURCE_FALLBACK = "fallback"


class ServeOutcome(str, Enum):
    """How a request was accounted.  Exactly one per request."""

    FRESH = "fresh"          #: cache hit or successful direct generation
    DEGRADED = "degraded"    #: stale knowledge (feature store / last good)
    FALLBACK = "fallback"    #: no knowledge available; canned response


@dataclass(frozen=True)
class ServeRequest:
    """One serving request.

    ``direct=True`` bypasses the cache and calls the model synchronously
    (the expensive comparison arm of the serving bench); the default
    cached mode serves from the two-layer cache and enqueues misses for
    batch processing.

    ``trace`` is the distributed-tracing context the request carries
    (:class:`~repro.obs.tracing.TraceContext`).  The cluster mints one
    per request (or propagates a caller-supplied one) so spans opened on
    the router, the replica, the cache and the resilience layer all join
    one trace tree; ``None`` serves the request untraced.
    """

    query: str
    direct: bool = False
    trace: TraceContext | None = None


@dataclass(frozen=True)
class ServeResult:
    """The structured answer to one :class:`ServeRequest`.

    ``latency_s`` is the simulated end-to-end latency charged for the
    request.  When a request flows through
    :meth:`~repro.serving.cluster.CosmoCluster.handle`, shard queueing
    delay is folded in, so the cluster-level number can exceed what the
    replica itself charged.  ``replica`` is the serving replica's name
    (a single :class:`~repro.serving.deployment.CosmoService` reports
    its own ``name``).

    ``trace_id`` echoes the request's trace id when it carried a
    :class:`~repro.obs.tracing.TraceContext` (None otherwise), so a
    caller holding a slow result can pull the matching trace out of a
    :class:`~repro.obs.trace_query.TraceAnalyzer` or a latency-histogram
    exemplar.

    ``batch_id`` / ``batch_index`` attribute the result to its serving
    batch: ``serve_batch`` stamps every result with the flush's batch id
    and the request's position inside it, so traces and histogram
    exemplars can locate one item's latency inside a vectorized flush.
    Both stay ``None`` on the per-item ``serve`` path.
    """

    query: str
    text: str
    outcome: ServeOutcome
    source: str
    latency_s: float
    replica: str
    trace_id: str | None = None
    batch_id: str | None = None
    batch_index: int | None = None

    @property
    def served(self) -> bool:
        """True when the request was answered with knowledge."""
        return self.outcome is not ServeOutcome.FALLBACK
