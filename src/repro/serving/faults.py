"""Deterministic fault injection for the serving stack.

The paper's availability story (§3.5: a cache-fronted COSMO-LM answering
heavy traffic) is only testable if the generator can *fail*.  This module
makes failure a first-class, reproducible input: a seeded
:class:`FaultInjector` draws a configured mix of failure modes and
:class:`FlakyGenerator` applies them to any ``generate_batch``
implementation.  All injected delays are charged to the generator's
:class:`~repro.llm.interface.LatencyModel` (simulated seconds — never a
wall-clock sleep), so chaos benches stay deterministic and fast.

Failure modes:

* **error** — the whole call raises :class:`GeneratorError` (model crash,
  OOM, connection reset);
* **timeout** — the call burns ``timeout_s`` of simulated time, then
  raises :class:`GeneratorTimeout`; partial work is discarded;
* **slow** — the call succeeds but costs ``slow_factor``× its normal
  latency (stragglers, contention);
* **garbage** — individual generations are corrupted (emptied or
  truncated mid-predicate), modelling decode failures that *look* like
  success — the mode only output validation can catch.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace

from repro.llm.interface import GenerationBatch
from repro.utils.rng import spawn_rng

__all__ = [
    "GeneratorFault",
    "GeneratorError",
    "GeneratorTimeout",
    "FaultPlan",
    "FaultInjector",
    "FlakyGenerator",
]


class GeneratorFault(RuntimeError):
    """Base class for generator failures the resilience layer handles."""


class GeneratorError(GeneratorFault):
    """The generator raised outright (crash, OOM, connection reset)."""


class GeneratorTimeout(GeneratorFault):
    """The generator exceeded its deadline; partial work is discarded."""


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities and magnitudes for each injected failure mode.

    ``error_rate``, ``timeout_rate`` and ``slow_rate`` are per *call*
    (mutually exclusive, drawn in that order); ``garbage_rate`` is per
    *generation* within a successful call.
    """

    error_rate: float = 0.0
    timeout_rate: float = 0.0
    slow_rate: float = 0.0
    garbage_rate: float = 0.0
    timeout_s: float = 5.0
    slow_factor: float = 10.0

    def __post_init__(self):
        for name in ("error_rate", "timeout_rate", "slow_rate", "garbage_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.error_rate + self.timeout_rate + self.slow_rate > 1.0:
            raise ValueError("per-call fault rates must sum to at most 1")

    @classmethod
    def mixed(cls, fault_rate: float, timeout_s: float = 5.0,
              slow_factor: float = 10.0) -> "FaultPlan":
        """A representative mix at a single headline rate: 35% errors,
        15% timeouts, 15% slow calls, 35% garbage generations."""
        return cls(
            error_rate=0.35 * fault_rate,
            timeout_rate=0.15 * fault_rate,
            slow_rate=0.15 * fault_rate,
            garbage_rate=0.35 * fault_rate,
            timeout_s=timeout_s,
            slow_factor=slow_factor,
        )


class FaultInjector:
    """Seeded source of fault decisions.

    The same ``(plan, seed)`` pair replays an identical fault schedule as
    long as the caller makes the same sequence of draws — the property
    the determinism tests and the chaos bench rely on.  ``plan`` may be
    swapped mid-run (e.g. to script a sustained outage followed by
    recovery) without disturbing the underlying random stream.
    """

    def __init__(self, plan: FaultPlan | None = None, seed: int = 0):
        self.plan = plan or FaultPlan()
        self._rng = spawn_rng(seed, "fault-injector")
        self.injected: Counter = Counter()

    def call_fault(self) -> str | None:
        """Draw the whole-call fault for one generate call."""
        roll = float(self._rng.random())
        for mode, rate in (
            ("error", self.plan.error_rate),
            ("timeout", self.plan.timeout_rate),
            ("slow", self.plan.slow_rate),
        ):
            if roll < rate:
                self.injected[mode] += 1
                return mode
            roll -= rate
        return None

    def corrupt(self, text: str) -> str | None:
        """Per-generation garbage draw: corrupted text, or ``None``."""
        if float(self._rng.random()) >= self.plan.garbage_rate:
            return None
        self.injected["garbage"] += 1
        if float(self._rng.random()) < 0.5:
            return ""
        # Truncate mid-predicate and drop the terminating period.
        return text[: max(1, len(text) // 3)].rstrip(".")


class FlakyGenerator:
    """Wrap any batched generator with injected faults.

    Implements :class:`~repro.llm.interface.KnowledgeGenerator`
    (``generate_batch``, ``latency``, ``parameter_count``, attribute
    passthrough) so it drops into
    :class:`~repro.serving.deployment.CosmoService` or
    :class:`~repro.serving.resilience.ResilientGenerator` unchanged.
    """

    def __init__(self, generator, injector: FaultInjector):
        self.inner = generator
        self.injector = injector
        self.latency = generator.latency
        self.parameter_count = getattr(generator, "parameter_count", 0)
        self.calls = 0
        self.failed_calls = 0

    def __getattr__(self, name):
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    def generate_batch(self, prompts) -> GenerationBatch:
        self.calls += 1
        fault = self.injector.call_fault()
        if fault == "error":
            self.failed_calls += 1
            self.latency.charge_seconds(self.latency.overhead_s)
            raise GeneratorError(f"injected generator error (call {self.calls})")
        if fault == "timeout":
            self.failed_calls += 1
            self.latency.charge_seconds(self.injector.plan.timeout_s)
            raise GeneratorTimeout(
                f"injected timeout after {self.injector.plan.timeout_s}s "
                f"(call {self.calls})"
            )
        before = self.latency.total_simulated_s
        generations = self.inner.generate_batch(prompts).generations
        if fault == "slow":
            elapsed = self.latency.total_simulated_s - before
            self.latency.charge_seconds(elapsed * (self.injector.plan.slow_factor - 1.0))
        corrupted = []
        for generation in generations:
            garbage = self.injector.corrupt(generation.text)
            if garbage is None:
                corrupted.append(generation)
            else:
                corrupted.append(replace(generation, text=garbage))
        return GenerationBatch(generations=corrupted)

    def generate_knowledge(self, prompts):
        """Deprecated shim over :meth:`generate_batch`."""
        return self.generate_batch(prompts).require()
