"""The 5-question annotation schema (§3.3.2, Appendix B).

The paper decomposes plausibility/typicality into five yes/no questions
to reduce annotator cognitive load and disagreement.  This module fixes
the question list and the ground-truth answer key per latent quality
class — the oracle simulated annotators read through their noise model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QUESTIONS", "TRUTH_TABLE", "AnnotationResult"]

# Appendix B, in order.
QUESTIONS: tuple[str, ...] = (
    "complete",      # Is the explanation a complete sentence?
    "relevant",      # Is the explanation relevant?
    "informative",   # Is the explanation informative?
    "plausible",     # Is the explanation plausible?
    "typical",       # Is the explanation typical?
)

# Latent quality class → ground-truth yes/no per question.
# The classes are the teacher's generation modes (see llm.teacher):
#   typical      — the behavior's true intent, well verbalized
#   plausible    — true of the product but not this behavior's reason
#   one_sided    — explains one co-bought product, implausible for the pair
#   generic      — "because they like them" style, uninformative
#   paraphrase   — echoes the title/query, uninformative
#   implausible  — fluent but wrong-domain knowledge
#   incomplete   — truncated generation
TRUTH_TABLE: dict[str, dict[str, bool]] = {
    "typical": {"complete": True, "relevant": True, "informative": True,
                "plausible": True, "typical": True},
    "plausible": {"complete": True, "relevant": True, "informative": True,
                  "plausible": True, "typical": False},
    "one_sided": {"complete": True, "relevant": True, "informative": True,
                  "plausible": False, "typical": False},
    "generic": {"complete": True, "relevant": True, "informative": False,
                "plausible": True, "typical": False},
    "paraphrase": {"complete": True, "relevant": True, "informative": False,
                   "plausible": True, "typical": False},
    "implausible": {"complete": True, "relevant": False, "informative": True,
                    "plausible": False, "typical": False},
    "incomplete": {"complete": False, "relevant": False, "informative": False,
                   "plausible": False, "typical": False},
}


@dataclass
class AnnotationResult:
    """Adjudicated answers for one knowledge candidate."""

    candidate_id: str
    answers: dict[str, bool] = field(default_factory=dict)
    needed_adjudication: bool = False

    @property
    def plausible(self) -> bool:
        """The adjudicated plausibility judgment."""
        return self.answers.get("plausible", False)

    @property
    def typical(self) -> bool:
        # Typicality presumes plausibility (the paper's two-step metric).
        return self.answers.get("typical", False) and self.plausible
