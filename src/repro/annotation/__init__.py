"""Human-in-the-loop annotation simulator (§3.3.2, Appendix B)."""

from repro.annotation.annotators import Annotator, AnnotatorPool
from repro.annotation.audit import AuditReport, audit_annotations
from repro.annotation.schema import QUESTIONS, TRUTH_TABLE, AnnotationResult

__all__ = [
    "QUESTIONS",
    "TRUTH_TABLE",
    "AnnotationResult",
    "Annotator",
    "AnnotatorPool",
    "AuditReport",
    "audit_annotations",
]
