"""Simulated annotators and the two-annotator + adjudicator protocol.

Stands in for the professional annotation vendor (§3.3.2): each question
is answered independently by two annotators who read the ground-truth
answer through a per-question noise channel; any disagreement is resolved
by a third, more careful adjudicator.  The pool tracks the total number
of judgments so annotation *cost* is a measurable quantity the ablation
benches can compare against uniform sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.annotation.schema import QUESTIONS, TRUTH_TABLE, AnnotationResult
from repro.utils.rng import spawn_rng

__all__ = ["Annotator", "AnnotatorPool"]


@dataclass
class Annotator:
    """One annotator with an error rate (probability of flipping a label)."""

    annotator_id: str
    error_rate: float
    _rng: np.random.Generator = None  # type: ignore[assignment]

    def answer(self, truth: bool) -> bool:
        """Noisy reading of the ground-truth answer."""
        if self._rng.random() < self.error_rate:
            return not truth
        return truth


class AnnotatorPool:
    """Two-annotator + adjudicator labeling of knowledge candidates."""

    def __init__(
        self,
        error_rate: float = 0.06,
        adjudicator_error_rate: float = 0.02,
        seed: int = 0,
    ):
        rng = spawn_rng(seed, "annotators")
        self.annotators = [
            Annotator("ann-1", error_rate, spawn_rng(seed, "ann-1")),
            Annotator("ann-2", error_rate, spawn_rng(seed, "ann-2")),
        ]
        self.adjudicator = Annotator("adjudicator", adjudicator_error_rate,
                                     spawn_rng(seed, "adjudicator"))
        self._rng = rng
        self.total_judgments = 0
        self.total_adjudications = 0

    def annotate(self, candidate_id: str, quality: str) -> AnnotationResult:
        """Label one candidate given its latent quality class."""
        truth = TRUTH_TABLE[quality]
        result = AnnotationResult(candidate_id=candidate_id)
        for question in QUESTIONS:
            first = self.annotators[0].answer(truth[question])
            second = self.annotators[1].answer(truth[question])
            self.total_judgments += 2
            if first == second:
                result.answers[question] = first
            else:
                result.answers[question] = self.adjudicator.answer(truth[question])
                self.total_judgments += 1
                self.total_adjudications += 1
                result.needed_adjudication = True
        return result

    def annotate_batch(self, items: list[tuple[str, str]]) -> list[AnnotationResult]:
        """Label ``(candidate_id, quality)`` pairs."""
        return [self.annotate(candidate_id, quality) for candidate_id, quality in items]

    @property
    def disagreement_rate(self) -> float:
        """Fraction of questions that needed the adjudicator."""
        pairs = self.total_judgments - self.total_adjudications
        questions = pairs / 2
        if questions == 0:
            return 0.0
        return self.total_adjudications / questions
