"""Internal annotation auditing (§3.3.2).

The paper audits a random 5% of annotations against careful internal
review and reports >90% accuracy.  Here the audit compares adjudicated
answers against the oracle truth table, reproducing that check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.annotation.schema import QUESTIONS, TRUTH_TABLE, AnnotationResult
from repro.utils.rng import spawn_rng

__all__ = ["AuditReport", "audit_annotations"]


@dataclass(frozen=True)
class AuditReport:
    """Outcome of one audit pass."""

    sampled: int
    questions_checked: int
    correct: int

    @property
    def accuracy(self) -> float:
        """Fraction of audited judgments matching careful review."""
        if self.questions_checked == 0:
            return 1.0
        return self.correct / self.questions_checked


def audit_annotations(
    results: list[AnnotationResult],
    qualities: dict[str, str],
    sample_rate: float = 0.05,
    seed: int = 0,
) -> AuditReport:
    """Audit a random sample of annotations against ground truth.

    ``qualities`` maps candidate_id → latent quality class (the audit's
    "careful internal review" has full access to the truth).
    """
    rng = spawn_rng(seed, "audit")
    n_sample = max(1, int(len(results) * sample_rate)) if results else 0
    if n_sample == 0:
        return AuditReport(sampled=0, questions_checked=0, correct=0)
    indices = rng.choice(len(results), size=n_sample, replace=False)
    checked, correct = 0, 0
    for index in indices:
        result = results[int(index)]
        truth = TRUTH_TABLE[qualities[result.candidate_id]]
        for question in QUESTIONS:
            checked += 1
            if result.answers.get(question) == truth[question]:
                correct += 1
    return AuditReport(sampled=n_sample, questions_checked=checked, correct=correct)
