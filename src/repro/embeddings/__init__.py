"""In-house embedding service stand-in (used by §3.3.1 similarity filtering)."""

from repro.embeddings.encoder import TextEncoder
from repro.embeddings.hashing import hashed_bow
from repro.embeddings.similarity import cosine, cosine_matrix

__all__ = ["TextEncoder", "hashed_bow", "cosine", "cosine_matrix"]
