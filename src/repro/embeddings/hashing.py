"""Feature hashing: text → sparse bag-of-n-grams in a fixed-width space."""

from __future__ import annotations

import hashlib

import numpy as np

from repro.utils.textproc import tokenize_words

__all__ = ["hash_token", "hashed_bow"]


def hash_token(token: str, buckets: int, salt: str = "") -> int:
    """Stable bucket index for a token (md5-based, salt-scoped)."""
    digest = hashlib.md5(f"{salt}\x00{token}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % buckets


def hashed_bow(
    text: str,
    buckets: int = 2048,
    use_bigrams: bool = True,
    salt: str = "",
) -> np.ndarray:
    """Hashed bag-of-words (plus bigrams) vector, L2-normalized.

    Deterministic, vocabulary-free featurization: the backbone of the
    embedding service and of the fixed relevance encoders.
    """
    vector = np.zeros(buckets)
    tokens = tokenize_words(text)
    for token in tokens:
        vector[hash_token(token, buckets, salt)] += 1.0
    if use_bigrams:
        for left, right in zip(tokens, tokens[1:]):
            vector[hash_token(f"{left}_{right}", buckets, salt)] += 1.0
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector /= norm
    return vector
