"""Dense text encoder: the "in-house language model pretrained on the
e-commerce corpus" the paper uses for similarity filtering (Eq. 1) and
for vectorizing COSMO knowledge in COSMO-GNN (§4.2.3).

Implementation: hashed bag-of-n-grams followed by a seeded random
projection.  Lexical overlap ⇒ high cosine, which is the only property
the similarity filter needs, and the projection gives compact dense
vectors for downstream models.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.hashing import hashed_bow
from repro.utils.rng import spawn_rng

__all__ = ["TextEncoder"]


class TextEncoder:
    """Deterministic text → dense-vector encoder with an LRU-ish cache."""

    def __init__(
        self,
        dim: int = 64,
        buckets: int = 2048,
        seed: int = 0,
        cache_size: int = 50_000,
    ):
        self.dim = dim
        self.buckets = buckets
        rng = spawn_rng(seed, "text-encoder")
        # Sparse random projection: dense Gaussian is fine at this width.
        self._projection = rng.normal(size=(buckets, dim)) / np.sqrt(dim)
        self._cache: dict[str, np.ndarray] = {}
        self._cache_size = cache_size

    def encode(self, text: str) -> np.ndarray:
        """Dense unit-norm vector for ``text``."""
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        bow = hashed_bow(text, buckets=self.buckets)
        dense = bow @ self._projection
        norm = np.linalg.norm(dense)
        if norm > 0:
            dense = dense / norm
        if len(self._cache) >= self._cache_size:
            self._cache.clear()
        self._cache[text] = dense
        return dense

    def encode_batch(self, texts: list[str]) -> np.ndarray:
        """Encode many texts; returns an (n, dim) matrix.

        Uncached texts are encoded through one stacked projection
        (matrix–matrix instead of ``n`` vector–matrix products); cache
        hits are reused as-is.  Row values can differ from sequential
        :meth:`encode` calls only by floating-point summation order —
        direction and norms are the same.
        """
        if not texts:
            return np.zeros((0, self.dim))
        rows: list[np.ndarray | None] = [self._cache.get(text) for text in texts]
        missing = [index for index, row in enumerate(rows) if row is None]
        if missing:
            # Distinct misses only: duplicate texts project once.
            order: dict[str, int] = {}
            for index in missing:
                order.setdefault(texts[index], len(order))
            bows = np.stack([hashed_bow(text, buckets=self.buckets)
                             for text in order])
            dense = bows @ self._projection
            norms = np.linalg.norm(dense, axis=1, keepdims=True)
            dense = dense / np.where(norms > 0, norms, 1.0)
            for text, row in zip(order, dense):
                if len(self._cache) >= self._cache_size:
                    self._cache.clear()
                self._cache[text] = row
            for index in missing:
                rows[index] = self._cache[texts[index]]
        return np.stack(rows)

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity in embedding space (Eq. 1)."""
        return float(self.encode(text_a) @ self.encode(text_b))
