"""Cosine-similarity helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["cosine", "cosine_matrix"]


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0 when either is zero)."""
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(a @ b / denom)


def cosine_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities between rows of ``a`` and rows of ``b``."""
    a_norm = a / np.maximum(np.linalg.norm(a, axis=1, keepdims=True), 1e-12)
    b_norm = b / np.maximum(np.linalg.norm(b, axis=1, keepdims=True), 1e-12)
    return a_norm @ b_norm.T
