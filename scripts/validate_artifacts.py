#!/usr/bin/env python
"""Schema-validate observability artifacts against their versioned schemas.

One validator entry point for every ``repro.obs.*/v1`` artifact the CLI
drives and benchmarks emit, so CI jobs call this once per job instead
of re-growing per-job heredoc checks:

* ``repro.obs.metrics/v1`` JSON snapshots (``validate_snapshot``)
* ``repro.obs.timeseries/v1`` timelines (``validate_timeline``)
* ``repro.obs.alerts/v1`` alert reports (``validate_alert_report``)
* ``repro.obs.traces/v1`` trace summaries (``validate_trace_summary``)
* ``repro.obs.kg_health/v1`` knowledge-health reports
  (``validate_kg_health``)
* ``repro.obs.events/v1`` JSONL event logs (``validate_events``)
* Chrome trace-event JSON (``validate_chrome_trace``)

JSON documents dispatch on their ``schema`` field (or the
``traceEvents`` key for Chrome traces); ``.jsonl`` files are validated
as event logs.  A file with no recognizable schema is a failure — an
artifact a job emits but nothing validates is exactly the gap this
script exists to close.

Usage::

    PYTHONPATH=src python scripts/validate_artifacts.py FILE [FILE ...]

Exits non-zero if any file fails; prints one line per file.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.obs import (
    ALERTS_SCHEMA,
    KG_HEALTH_SCHEMA,
    SNAPSHOT_SCHEMA,
    TIMELINE_SCHEMA,
    TRACES_SCHEMA,
    validate_alert_report,
    validate_chrome_trace,
    validate_events,
    validate_kg_health,
    validate_snapshot,
    validate_timeline,
    validate_trace_summary,
)

#: schema id -> (label, validator over the parsed JSON payload)
_VALIDATORS = {
    SNAPSHOT_SCHEMA: ("metrics snapshot", validate_snapshot),
    TIMELINE_SCHEMA: ("timeline", validate_timeline),
    ALERTS_SCHEMA: ("alert report", validate_alert_report),
    TRACES_SCHEMA: ("trace summary", validate_trace_summary),
    KG_HEALTH_SCHEMA: ("kg health report", validate_kg_health),
}


def validate_file(path: pathlib.Path) -> str:
    """Validate one artifact; returns its label or raises ValueError."""
    text = path.read_text()
    if path.suffix == ".jsonl":
        validate_events(text)
        return "event log"
    payload = json.loads(text)
    if isinstance(payload, dict) and "traceEvents" in payload:
        validate_chrome_trace(payload)
        return "chrome trace"
    schema = payload.get("schema") if isinstance(payload, dict) else None
    entry = _VALIDATORS.get(schema)
    if entry is None:
        raise ValueError(
            f"unrecognized artifact schema {schema!r} — add its validator "
            "to scripts/validate_artifacts.py"
        )
    label, validator = entry
    validator(payload)
    return label


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=pathlib.Path,
                        help="artifact files to validate")
    args = parser.parse_args(argv)

    failures = 0
    for path in args.files:
        try:
            label = validate_file(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            failures += 1
            print(f"FAIL {path}: {exc}")
        else:
            print(f"ok   {path} ({label})")
    if failures:
        print(f"FAIL: {failures} of {len(args.files)} artifact(s) invalid")
        return 1
    print(f"ok: all {len(args.files)} artifact(s) validate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
