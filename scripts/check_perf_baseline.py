#!/usr/bin/env python
"""Perf-smoke regression gate: current sweep vs checked-in baseline.

Compares the cluster-scaling sweep a benchmark run just wrote
(``benchmarks/results/cluster_scaling.json``) against the committed
baseline (``benchmarks/baselines/cluster_scaling.json``) and exits
non-zero when any arm's throughput regressed by more than the tolerance
(default 10 %).  Both files are byte-deterministic products of the
simulated-clock sweep, so any drift is a real behavior change, not
machine noise — the tolerance only leaves room for intentional small
cost-model adjustments.

Usage::

    python scripts/check_perf_baseline.py \
        [--results benchmarks/results/cluster_scaling.json] \
        [--baseline benchmarks/baselines/cluster_scaling.json] \
        [--tolerance 0.10] [--update] \
        [--history benchmarks/BENCH_trajectory.json] [--note <sha>]

``--update`` rewrites the baseline from the current results instead of
checking (for intentional perf changes; commit the diff).

``--history`` appends this run's per-arm summary (and deltas against
the baseline, when one exists) to a perf-trajectory JSON file, creating
it on first use.  Entries carry a monotonically increasing sequence
number and an optional ``--note`` (CI passes the commit SHA) instead of
timestamps, so the file is reproducible in tests and meaningful across
machines; the perf-smoke CI job uploads it as an artifact, giving the
throughput numbers a visible history instead of a single pass/fail bit.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_RESULTS = REPO_ROOT / "benchmarks" / "results" / "cluster_scaling.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "cluster_scaling.json"


def _arms_by_replicas(payload: dict) -> dict[int, dict]:
    return {int(arm["replicas"]): arm for arm in payload["arms"]}


def check(results_path: pathlib.Path, baseline_path: pathlib.Path,
          tolerance: float) -> int:
    results = json.loads(results_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    current = _arms_by_replicas(results)
    expected = _arms_by_replicas(baseline)

    missing = sorted(set(expected) - set(current))
    if missing:
        print(f"FAIL: results are missing replica arms {missing}")
        return 1

    failures = 0
    for replicas, base_arm in sorted(expected.items()):
        base = base_arm["throughput"]
        now = current[replicas]["throughput"]
        floor = base * (1.0 - tolerance)
        delta = (now - base) / base
        status = "ok"
        if now < floor:
            status = "REGRESSION"
            failures += 1
        print(f"{replicas} replica(s): {now:,.0f} req/s vs baseline "
              f"{base:,.0f} req/s ({delta:+.1%}, floor {floor:,.0f}) "
              f"[{status}]")
    if failures:
        print(f"FAIL: {failures} arm(s) regressed more than "
              f"{tolerance:.0%} below baseline")
        return 1
    print("ok: throughput within tolerance on every arm")
    return 0


def append_history(history_path: pathlib.Path, results_path: pathlib.Path,
                   baseline_path: pathlib.Path, note: str) -> None:
    """Append one trajectory entry; create the history file if needed.

    Each entry is deterministic for deterministic results: sequence
    number, per-arm throughput/p99, fractional deltas vs the baseline
    (omitted when no baseline exists yet), and the caller's note.
    """
    results = json.loads(results_path.read_text())
    current = _arms_by_replicas(results)
    expected: dict[int, dict] = {}
    if baseline_path.exists():
        expected = _arms_by_replicas(json.loads(baseline_path.read_text()))

    if history_path.exists():
        history = json.loads(history_path.read_text())
    else:
        history = {"format": "bench-trajectory", "version": 1, "runs": []}
    if history.get("format") != "bench-trajectory":
        raise ValueError(f"{history_path}: not a bench-trajectory file")

    arms = []
    for replicas, arm in sorted(current.items()):
        entry = {
            "replicas": replicas,
            "throughput": arm["throughput"],
            "p99_ms": arm.get("p99_ms"),
        }
        base = expected.get(replicas)
        if base is not None and base.get("throughput"):
            entry["delta_vs_baseline"] = round(
                (arm["throughput"] - base["throughput"]) / base["throughput"], 6)
        arms.append(entry)
    history["runs"].append({
        "sequence": len(history["runs"]),
        "note": note,
        "arms": arms,
    })
    history_path.parent.mkdir(parents=True, exist_ok=True)
    history_path.write_text(json.dumps(history, sort_keys=True, indent=2)
                            + "\n")
    print(f"history: appended run #{len(history['runs']) - 1} "
          f"({len(arms)} arm(s)) to {history_path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=pathlib.Path,
                        default=DEFAULT_RESULTS)
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional throughput drop (default 0.10)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current results")
    parser.add_argument("--history", type=pathlib.Path, default=None,
                        metavar="PATH", nargs="?",
                        const=REPO_ROOT / "benchmarks" / "BENCH_trajectory.json",
                        help="append this run to a perf-trajectory file "
                             "(default benchmarks/BENCH_trajectory.json)")
    parser.add_argument("--note", type=str, default="",
                        help="free-form label for the history entry "
                             "(CI passes the commit SHA)")
    args = parser.parse_args(argv)

    if not args.results.exists():
        print(f"FAIL: no results at {args.results} — "
              "run benchmarks/bench_cluster_scaling.py first")
        return 1
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.results, args.baseline)
        print(f"baseline updated from {args.results}")
        return 0
    if args.history is not None:
        append_history(args.history, args.results, args.baseline, args.note)
    if not args.baseline.exists():
        print(f"FAIL: no baseline at {args.baseline} — "
              "run with --update to create one")
        return 1
    return check(args.results, args.baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
