#!/usr/bin/env python
"""Perf-smoke regression gate: current sweep vs checked-in baseline.

Compares the cluster-scaling sweep a benchmark run just wrote
(``benchmarks/results/cluster_scaling.json``) against the committed
baseline (``benchmarks/baselines/cluster_scaling.json``) and exits
non-zero when any arm's throughput regressed by more than the tolerance
(default 10 %).  Both files are byte-deterministic products of the
simulated-clock sweep, so any drift is a real behavior change, not
machine noise — the tolerance only leaves room for intentional small
cost-model adjustments.

Usage::

    python scripts/check_perf_baseline.py \
        [--results benchmarks/results/cluster_scaling.json] \
        [--baseline benchmarks/baselines/cluster_scaling.json] \
        [--tolerance 0.10] [--update]

``--update`` rewrites the baseline from the current results instead of
checking (for intentional perf changes; commit the diff).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_RESULTS = REPO_ROOT / "benchmarks" / "results" / "cluster_scaling.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "cluster_scaling.json"


def _arms_by_replicas(payload: dict) -> dict[int, dict]:
    return {int(arm["replicas"]): arm for arm in payload["arms"]}


def check(results_path: pathlib.Path, baseline_path: pathlib.Path,
          tolerance: float) -> int:
    results = json.loads(results_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    current = _arms_by_replicas(results)
    expected = _arms_by_replicas(baseline)

    missing = sorted(set(expected) - set(current))
    if missing:
        print(f"FAIL: results are missing replica arms {missing}")
        return 1

    failures = 0
    for replicas, base_arm in sorted(expected.items()):
        base = base_arm["throughput"]
        now = current[replicas]["throughput"]
        floor = base * (1.0 - tolerance)
        delta = (now - base) / base
        status = "ok"
        if now < floor:
            status = "REGRESSION"
            failures += 1
        print(f"{replicas} replica(s): {now:,.0f} req/s vs baseline "
              f"{base:,.0f} req/s ({delta:+.1%}, floor {floor:,.0f}) "
              f"[{status}]")
    if failures:
        print(f"FAIL: {failures} arm(s) regressed more than "
              f"{tolerance:.0%} below baseline")
        return 1
    print("ok: throughput within tolerance on every arm")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=pathlib.Path,
                        default=DEFAULT_RESULTS)
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional throughput drop (default 0.10)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current results")
    args = parser.parse_args(argv)

    if not args.results.exists():
        print(f"FAIL: no results at {args.results} — "
              "run benchmarks/bench_cluster_scaling.py first")
        return 1
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.results, args.baseline)
        print(f"baseline updated from {args.results}")
        return 0
    if not args.baseline.exists():
        print(f"FAIL: no baseline at {args.baseline} — "
              "run with --update to create one")
        return 1
    return check(args.results, args.baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
