"""Quickstart: run the COSMO pipeline end to end on a small world.

Builds the synthetic marketplace, mines knowledge from the teacher LLM,
refines and annotates it, finetunes COSMO-LM, assembles the knowledge
graph, and prints what came out.

Run:  python examples/quickstart.py
"""

from repro.behavior import WorldConfig
from repro.core import CosmoLMConfig, CosmoPipeline, PipelineConfig
from repro.reporting import Table, format_percent


def main() -> None:
    config = PipelineConfig(
        seed=7,
        world=WorldConfig(seed=7, products_per_domain=30,
                          broad_queries_per_domain=12, specific_queries_per_domain=12),
        cobuy_pairs_per_domain=40,
        searchbuy_records_per_domain=60,
        annotation_budget=600,
        lm=CosmoLMConfig(epochs=8),
    )
    print("Running the COSMO pipeline (this trains a small COSMO-LM)...")
    result = CosmoPipeline(config).run()

    stats = result.kg.stats()
    print(f"\nKnowledge graph: {stats.nodes} nodes, {stats.edges} edges, "
          f"{stats.relations} relations, {stats.domains} domains")

    table = Table("Annotated quality (Table 4 shape)", ["Behavior", "Plausibility", "Typicality"])
    for behavior, ratios in sorted(result.quality_ratios.items()):
        table.add_row(behavior, format_percent(ratios["plausibility"]),
                      format_percent(ratios["typicality"]))
    print()
    print(table.render())

    print("\nSample knowledge edges:")
    for triple in result.kg.triples()[:8]:
        head = triple.head.split(" ||| ")[0]
        print(f"  [{triple.domain}] {head!r} --{triple.relation.value}--> {triple.tail!r}"
              f" (plausibility {triple.plausibility:.2f})")

    print("\nCOSMO-LM generations for fresh behaviors:")
    lm = result.cosmo_lm
    fresh = [s for s in result.samples if s.behavior == "search-buy"][:5]
    prompts = [lm.prompt_for_sample(result.world, s) for s in fresh]
    for sample, generation in zip(fresh, lm.generate_batch(prompts).require()):
        query_text = sample.head_text.split(" ||| ")[0]
        print(f"  query {query_text!r} -> {generation.text!r}")

    teacher_per = result.teacher_latency.total_simulated_s / len(result.candidates)
    print(f"\nSimulated inference cost per generation: teacher {teacher_per:.2f}s "
          f"vs COSMO-LM {0.005:.3f}s-scale — the gap that makes online serving feasible.")


if __name__ == "__main__":
    main()
