"""Fault-tolerant serving: retries, circuit breaking, graceful degradation.

Walks the resilience subsystem end to end with a deterministic scripted
generator (no pipeline training, runs in well under a second):

1. inject a mixed fault schedule into the generator and watch the retry
   policy absorb it during batch processing;
2. script a total outage — the circuit breaker opens, requests degrade to
   stale feature-store entries instead of failing, and dead-lettered
   queries are re-driven by the daily refresh;
3. recovery — half-open probes close the breaker and the cache heals.

Everything runs on the simulated clock; re-running prints identical
numbers.

Run:  python examples/resilient_serving.py
"""

from repro.serving import CosmoService, ServeRequest, SimClock
from repro.serving.chaos import ScriptedGenerator, _response_ok
from repro.serving.faults import FaultInjector, FaultPlan, FlakyGenerator
from repro.serving.resilience import CircuitBreaker

QUERIES = [f"query {i:02d}" for i in range(12)]


def serve_round(service: CosmoService, label: str) -> None:
    results = service.serve_batch([ServeRequest(query=q) for q in QUERIES])
    valid = sum(
        result.text == ScriptedGenerator.knowledge_for(q)
        for q, result in zip(QUERIES, results)
    )
    metrics = service.metrics
    print(f"  {label:28s} {valid}/{len(QUERIES)} correct | "
          f"fresh {metrics.served_fresh}, degraded {metrics.degraded_serves}, "
          f"fallback {metrics.fallbacks}")


def main() -> None:
    clock = SimClock()
    injector = FaultInjector(FaultPlan.mixed(0.3), seed=42)
    flaky = FlakyGenerator(ScriptedGenerator(), injector)
    breaker = CircuitBreaker(clock, window=20, min_calls=10, cooldown_s=120.0)
    service = CosmoService(
        flaky, clock=clock, breaker=breaker,
        response_validator=_response_ok, seed=42,
        fallback_response="",
    )

    print("Phase 1 — 30% mixed faults, resilience absorbing them:")
    serve_round(service, "cold cache (all misses)")
    installed = service.run_batch()
    print(f"  batch installed {installed} responses "
          f"(retries so far: {service.metrics.retries}, "
          f"rejected garbage: {service.metrics.rejected_generations})")
    serve_round(service, "warm cache")

    print("\nPhase 2 — total outage, daily layer expired:")
    injector.plan = FaultPlan(error_rate=1.0)
    clock.advance_days(1)  # daily layer expires; demand hits the generator
    serve_round(service, "outage, degraded serving")
    service.run_batch()  # retries exhaust; queries go to the dead-letter queue
    print(f"  dead-lettered queries: {service.metrics.dead_lettered} "
          f"(after {service.metrics.retries} total retries)")
    serve_round(service, "still degraded")
    service.run_batch()  # sustained failures trip the breaker
    service.run_batch()  # refused fast while the breaker is open
    print(f"  breaker state: {breaker.state.value} "
          f"(opens: {breaker.opens}, fast refusals: {breaker.refusals})")

    print("\nPhase 3 — outage over, cooldown elapses, breaker recovers:")
    injector.plan = FaultPlan()
    clock.advance(breaker.cooldown_s)
    service.run_batch()   # half-open probe succeeds
    report = service.daily_refresh(refresh_stale=False)
    print(f"  daily refresh re-drove {report['redriven']} dead letters")
    serve_round(service, "healed")
    print(f"  breaker state: {breaker.state.value} (closes: {breaker.closes})")
    print(f"\nAvailability over the whole scenario: "
          f"{service.metrics.availability:.1%} "
          f"({service.metrics.requests} requests, "
          f"{service.metrics.fallbacks} fallbacks)")


if __name__ == "__main__":
    main()
