"""Search navigation + online serving (paper §3.5, §4.3).

Runs the pipeline to get a knowledge graph, organizes it into the
Figure 8 intent hierarchy, walks a multi-turn navigation session, runs
the simulated A/B experiment, and exercises the two-layer cache serving
flow of Figure 5.

Run:  python examples/navigation_and_serving.py
"""

from repro.apps.navigation import (
    CosmoNavigator,
    NavigationABTest,
    TaxonomyNavigator,
    build_navigation_hierarchy,
)
from repro.behavior import WorldConfig
from repro.core import CosmoLMConfig, CosmoPipeline, PipelineConfig
from repro.serving import CosmoService, ServeRequest


def main() -> None:
    config = PipelineConfig(
        seed=13,
        world=WorldConfig(seed=13, products_per_domain=30,
                          broad_queries_per_domain=12, specific_queries_per_domain=12),
        cobuy_pairs_per_domain=40,
        searchbuy_records_per_domain=60,
        annotation_budget=600,
        lm=CosmoLMConfig(epochs=8),
    )
    print("Running the pipeline to build the knowledge graph...")
    result = CosmoPipeline(config).run()
    world = result.world

    hierarchy = build_navigation_hierarchy(result.kg, world)
    print(f"\nIntent hierarchy: {hierarchy.stats()}")

    # Show one coarse → fine chain (Figure 8).
    for domain in hierarchy.domains():
        for root in hierarchy.for_domain(domain):
            if root.children:
                child = root.children[0]
                print(f"  {domain}: {root.label!r} -> {child.label!r} "
                      f"-> products {child.product_types[:3] or root.product_types[:3]}")
                break
        else:
            continue
        break

    # Multi-turn navigation (Figure 9).
    navigator = CosmoNavigator(world, hierarchy)
    domain = hierarchy.domains()[0]
    root = hierarchy.for_domain(domain)[0]
    first = navigator.first_turn(domain, root.label)
    print(f"\nNavigation for query {root.label!r} in {domain}:")
    print(f"  turn 1 ({first.layer}): {[s.label for s in first.suggestions]}")
    if first.suggestions:
        second = navigator.refine(domain, first.suggestions[0])
        print(f"  turn 2 ({second.layer}): {[s.label for s in second.suggestions]}")

    # Online A/B experiment (§4.3.2).
    experiment = NavigationABTest(
        world, TaxonomyNavigator(world), CosmoNavigator(world, hierarchy),
        treatment_fraction=0.5, seed=13,
    )
    outcome = experiment.run(n_sessions=20_000)
    z_eng, p_eng = outcome.engagement_significance()
    print(f"\nA/B test over 20k sessions:")
    print(f"  engagement lift {100 * outcome.engagement_lift:+.1f}% (z={z_eng:.1f}, p={p_eng:.2g})")
    print(f"  sales lift      {100 * outcome.sales_lift:+.2f}%")

    # Serving flow (Figure 5): miss -> batch -> hit.
    lm = result.cosmo_lm
    query = next(q for q in world.queries.broad()
                 if world.catalog.serving_intent(q.intent_id))
    product = world.catalog.serving_intent(query.intent_id)[0]
    service = CosmoService(
        lm,
        prompt_builder=lambda text: lm.searchbuy_prompt(
            text, product.title, product.domain, product_type=product.product_type),
        fallback_response="(pending batch)",
    )
    print(f"\nServing {query.text!r}:")
    cold = service.serve_batch([ServeRequest(query=query.text)])[0]
    print(f"  cold request -> {cold.text!r}")
    service.run_batch()
    warm = service.serve_batch([ServeRequest(query=query.text)])[0]
    print(f"  after batch  -> {warm.text!r} "
          f"(batch {warm.batch_id}[{warm.batch_index}])")
    print(f"  cache hit rate {service.cache.stats.hit_rate:.0%}, "
          f"feature store entries {len(service.features)}")


if __name__ == "__main__":
    main()
