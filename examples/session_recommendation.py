"""Session-based recommendation with COSMO-GNN (paper §4.2, Table 8 shape).

Simulates session logs for one domain, trains a set of recommenders
including GCE-GNN and COSMO-GNN (GCE-GNN + knowledge embeddings), and
compares Hits/NDCG/MRR@10.

Run:  python examples/session_recommendation.py
"""

from repro.apps.recommendation import (
    TrainConfig,
    build_session_dataset,
    evaluate_session_model,
    train_session_model,
)
from repro.behavior import SessionConfig, World, WorldConfig, simulate_sessions
from repro.embeddings import TextEncoder
from repro.reporting import Table, format_float


def main() -> None:
    world = World(WorldConfig(seed=9, products_per_domain=48,
                              broad_queries_per_domain=15, specific_queries_per_domain=15))
    log = simulate_sessions(
        world,
        SessionConfig(domain="Electronics", n_sessions=1200,
                      mean_length=10.0, revise_prob=0.2),
        seed=9,
    )
    print(f"Sessions: {log.stats()}")

    encoder = TextEncoder(dim=64, seed=9)
    # Knowledge provider: the oracle query-intent explanation (the example
    # stays fast; the benchmark uses a finetuned COSMO-LM).
    dataset = build_session_dataset(
        log, max_len=8,
        knowledge_provider=lambda query, item_id: query,
        encoder=encoder,
    )
    print(f"Items {dataset.n_items - 1}, train/dev/test = "
          f"{len(dataset.train)}/{len(dataset.dev)}/{len(dataset.test)}")

    config = TrainConfig(epochs=2, dim=40)
    table = Table("Session recommendation (Table 8 shape)",
                  ["Method", "Hits@10", "NDCG@10", "MRR@10"])
    for name in ("FPMC", "GRU4Rec", "SRGNN", "GCE-GNN", "COSMO-GNN"):
        model = train_session_model(name, dataset, config, seed=9)
        metrics = evaluate_session_model(model, dataset, config=config)
        table.add_row(name, *(format_float(metrics[k]) for k in
                              ("Hits@10", "NDCG@10", "MRR@10")))
    print()
    print(table.render())
    print("\nExpected shape: GNN models beat sequential baselines and")
    print("COSMO-GNN's query-knowledge features lift GCE-GNN further.")


if __name__ == "__main__":
    main()
