"""KG export, model persistence, and the serving feedback loop.

Shows the durable-artifact side of the system: build the KG once, ship
it as JSON Lines, persist the finetuned COSMO-LM, then run the serving
feedback loop (§3.5.2) where user interactions continually refresh the
model's typicality judge.

Run:  python examples/kg_export_and_feedback.py
"""

import tempfile
from pathlib import Path

from repro.behavior import WorldConfig
from repro.core import CosmoLMConfig, CosmoPipeline, PipelineConfig
from repro.core.cosmo_lm import CosmoLM
from repro.core.kg_io import load_kg, save_kg
from repro.serving import CosmoService


def main() -> None:
    config = PipelineConfig(
        seed=17,
        world=WorldConfig(seed=17, products_per_domain=24,
                          broad_queries_per_domain=10, specific_queries_per_domain=10),
        cobuy_pairs_per_domain=30,
        searchbuy_records_per_domain=40,
        annotation_budget=400,
        lm=CosmoLMConfig(epochs=8, hidden_dim=64),
    )
    print("Building the KG and finetuning COSMO-LM...")
    result = CosmoPipeline(config).run()

    with tempfile.TemporaryDirectory() as workdir:
        workdir = Path(workdir)

        # 1. Ship the knowledge graph.
        kg_path = workdir / "cosmo_kg.jsonl"
        written = save_kg(result.kg, kg_path)
        reloaded = load_kg(kg_path)
        print(f"\nKG export: {written} edges -> {kg_path.name} "
              f"({kg_path.stat().st_size / 1024:.0f} KiB), "
              f"reload check: {reloaded.stats() == result.kg.stats()}")

        # 2. Persist and restore the model (the deployment refresh artifact).
        model_dir = workdir / "cosmo-lm"
        result.cosmo_lm.save(model_dir)
        restored = CosmoLM.load(model_dir)
        sample = result.samples[0]
        prompt = restored.prompt_for_sample(result.world, sample)
        print(f"Model restore: generation {restored.generate_batch([prompt]).require()[0].text!r}")

        # 3. Feedback loop: user interactions continually finetune the
        # judge head — here, repeated positive engagement teaches it to
        # accept a knowledge string it initially rejected.
        service = CosmoService(restored)
        knowledge = restored.generate_batch([prompt]).require()[0].text.rstrip(".")
        before = restored.predict_typicality(prompt, knowledge)
        for _ in range(25):
            service.record_feedback(prompt.rsplit(" task: ", 1)[0], knowledge,
                                    helpful=True)
        consumed = service.apply_feedback(epochs=3)
        after = restored.predict_typicality(prompt, knowledge)
        print(f"Feedback loop: consumed {consumed} interactions; "
              f"judge on engaged knowledge: {before!r} -> {after!r}")


if __name__ == "__main__":
    main()
