"""Search relevance with COSMO knowledge (paper §4.1, Table 6 shape).

Generates an ESCI-style dataset, trains the three architectures in both
encoder regimes, and shows how intention knowledge lifts Macro/Micro F1.
Uses the world-oracle knowledge provider so the example runs fast; the
benchmark harness (benchmarks/bench_table6_relevance.py) uses a real
finetuned COSMO-LM instead.

Run:  python examples/search_relevance.py
"""

from repro.apps.relevance import FeatureExtractor, prepare_esci, train_relevance_model
from repro.behavior import World, WorldConfig, generate_esci
from repro.reporting import Table, format_float


def oracle_knowledge_provider(world):
    """Product-conditioned intent knowledge (COSMO-LM upper bound)."""

    def provide(examples):
        texts = []
        for example in examples:
            product = world.catalog.get(example.product_id)
            if example.intent_id is not None and example.intent_id in product.intent_ids:
                tail = world.intents.get(example.intent_id).tail
            elif product.intent_ids:
                tail = world.intents.get(product.intent_ids[0]).tail
            else:
                tail = ""
            texts.append(f"it is used for {tail}." if tail else "")
        return texts

    return provide


def main() -> None:
    world = World(WorldConfig(seed=5, products_per_domain=30,
                              broad_queries_per_domain=15, specific_queries_per_domain=15))
    dataset = generate_esci(world, locale="KDD Cup", pairs_per_query=8,
                            max_queries=300, seed=5)
    print(f"ESCI dataset: {len(dataset.train)} train / {len(dataset.test)} test pairs, "
          f"labels {dict(dataset.label_distribution())}")
    prepared = prepare_esci(dataset, knowledge_provider=oracle_knowledge_provider(world))

    table = Table("Search relevance (Table 6 shape)",
                  ["Method", "Encoder", "Macro F1", "Micro F1"])
    for architecture in ("bi-encoder", "cross-encoder", "cross-encoder-intent"):
        for trainable in (False, True):
            _, result = train_relevance_model(
                prepared, architecture, trainable,
                epochs=8, seed=5, extractor=FeatureExtractor(512),
            )
            table.add_row(
                architecture,
                "trainable" if trainable else "fixed",
                format_float(100 * result.macro_f1),
                format_float(100 * result.micro_f1),
            )
        table.add_separator()
    print()
    print(table.render())
    print("\nExpected shape: cross > bi, and '+ intent' lifts both regimes —")
    print("most dramatically with the fixed encoder, as in the paper.")


if __name__ == "__main__":
    main()
